"""The collective-algorithm selection API.

Covers the registry itself (lookup, registration errors, selection-string
parsing), the four-level resolution precedence (per call > per
communicator > engine config > environment variable > default), the
``split_type`` node decomposition, ch_mad lane steering, the deprecation
shims over :mod:`repro.mpi.algorithms`, and the performance claim the
node-aware family exists for: hierarchical allreduce beats the flat
default on a multirail SMP cluster.
"""

import numpy as np
import pytest

from repro.cluster import EngineConfig, MPIWorld, multirail_smp_cluster
from repro.errors import ConfigurationError, MPICommError
from repro.mpi import algorithms as legacy
from repro.mpi import coll
from repro.mpi import collectives as _coll
from repro.mpi.constants import COMM_TYPE_SHARED, UNDEFINED
from repro.mpi.reduce_ops import SUM
from repro.sim.engine import install_instrumentation
from tests.helpers import linear_cluster

SMP = dict(nodes=2, processes_per_node=2, rails=2)


# ---------------------------------------------------------------------------
# registry mechanics
# ---------------------------------------------------------------------------

def test_registry_lookup_and_names():
    hier = coll.get("allreduce", "hier")
    assert hier.operation == "allreduce" and hier.name == "hier"
    for operation in coll.OPERATIONS:
        assert "default" in coll.names(operation)
    assert "hier" in coll.names("barrier")
    assert "multilane" in coll.names("allgather")
    assert coll.operations_with("multilane") == \
        ["bcast", "allreduce", "allgather"]


def test_registry_rejects_unknowns_and_duplicates():
    with pytest.raises(ConfigurationError, match="no 'bcast' algorithm"):
        coll.get("bcast", "nope")
    with pytest.raises(ConfigurationError, match="unknown collective"):
        coll.register("frobnicate", "x", _coll.bcast)
    with pytest.raises(ConfigurationError, match="already registered"):
        coll.register("bcast", "default", _coll.bcast)


def test_defaults_are_the_exact_flat_callables():
    # The bit-identical guarantee for unselected runs hinges on this.
    for operation in coll.OPERATIONS:
        assert coll.get(operation, "default").fn \
            is getattr(_coll, operation)


def test_parse_selection():
    assert coll.parse_selection("allreduce=multilane, bcast=binomial") == {
        "allreduce": "multilane", "bcast": "binomial"}
    # A bare name fans out to every operation registering it.
    hier = coll.parse_selection("hier")
    assert hier == {op: "hier" for op in
                    ("barrier", "bcast", "reduce", "allreduce", "allgather")}
    with pytest.raises(ConfigurationError, match="known names"):
        coll.parse_selection("bogus")
    with pytest.raises(ConfigurationError, match="no 'barrier' algorithm"):
        coll.parse_selection("barrier=multilane")


# ---------------------------------------------------------------------------
# resolution precedence
# ---------------------------------------------------------------------------

@pytest.fixture
def probes():
    """Two temporary allreduce algorithms that log their invocations."""
    calls = {"a": 0, "b": 0}

    def probe_a(comm, obj, op):
        calls["a"] += 1
        result = yield from _coll.allreduce(comm, obj, op)
        return result

    def probe_b(comm, obj, op):
        calls["b"] += 1
        result = yield from _coll.allreduce(comm, obj, op)
        return result

    coll.register("allreduce", "probe_a", probe_a)
    coll.register("allreduce", "probe_b", probe_b)
    try:
        yield calls
    finally:
        del coll.REGISTRY[("allreduce", "probe_a")]
        del coll.REGISTRY[("allreduce", "probe_b")]


def test_per_call_beats_per_comm_beats_engine(probes):
    config = EngineConfig(coll_algorithm="allreduce=probe_a")

    def program(mpi):
        comm = mpi.comm_world
        # Engine-wide selection applies when nothing else is said.
        yield from comm.allreduce(1, SUM)
        # The communicator's table overrides the engine...
        comm.set_coll_algorithm("allreduce", "probe_b")
        yield from comm.allreduce(1, SUM)
        # ...and the per-call keyword overrides both.
        total = yield from comm.allreduce(2, SUM, algorithm="probe_a")
        return total

    results = MPIWorld(linear_cluster(2), config).run(program)
    assert results == [4, 4]
    # 2 ranks x (engine->a, comm->b, per-call->a): any precedence break
    # would shift this split (all-engine: a=6; comm-sticky: a=2, b=4).
    assert probes == {"a": 4, "b": 2}


def test_env_var_selection(probes, monkeypatch):
    monkeypatch.setenv(coll.ENV_VAR, "allreduce=probe_b")

    def program(mpi):
        total = yield from mpi.comm_world.allreduce(1, SUM)
        return total

    assert MPIWorld(linear_cluster(2)).run(program) == [2, 2]
    assert probes["b"] == 2 and probes["a"] == 0


def test_set_coll_algorithm_validates():
    def program(mpi):
        with pytest.raises(ConfigurationError):
            mpi.comm_world.set_coll_algorithm("allreduce", "nope")
        with pytest.raises(ConfigurationError):
            mpi.comm_world.set_coll_algorithm("sendrecv", "default")
        yield from mpi.comm_world.barrier()

    MPIWorld(linear_cluster(2)).run(program)


def test_engine_config_validates_at_apply_time():
    with pytest.raises(ConfigurationError, match="no 'allreduce'"):
        MPIWorld(linear_cluster(2),
                 EngineConfig(coll_algorithm="allreduce=nope"))


def test_global_hier_selection_runs_whole_stack():
    # Selecting "hier" globally must not recurse: the node/leader
    # machinery (dup/split/split_type) and the hierarchical phases
    # themselves run the flat defaults directly.
    config = EngineConfig(coll_algorithm="hier")

    def program(mpi):
        comm = mpi.comm_world
        total = yield from comm.allreduce(comm.rank + 1, SUM)
        word = yield from comm.bcast("go" if comm.rank == 1 else None,
                                     root=1)
        yield from comm.barrier()
        everyone = yield from comm.allgather(comm.rank)
        return (total, word, tuple(everyone))

    results = MPIWorld(multirail_smp_cluster(**SMP), config).run(program)
    assert results == [(10, "go", (0, 1, 2, 3))] * 4


# ---------------------------------------------------------------------------
# split_type
# ---------------------------------------------------------------------------

def test_split_type_shared_groups_by_node():
    def program(mpi):
        comm = mpi.comm_world
        node_comm = yield from comm.split_type(COMM_TYPE_SHARED)
        peers = yield from node_comm.allgather(comm.rank)
        return (node_comm.size, tuple(peers))

    results = MPIWorld(multirail_smp_cluster(**SMP)).run(program)
    # Ranks 0,1 share node n0; ranks 2,3 share n1.
    assert results == [(2, (0, 1)), (2, (0, 1)), (2, (2, 3)), (2, (2, 3))]


def test_split_type_undefined_and_key_and_errors():
    def program(mpi):
        comm = mpi.comm_world
        nothing = yield from comm.split_type(UNDEFINED)
        assert nothing is None
        # key reverses the intra-node rank order.
        node_comm = yield from comm.split_type(key=-comm.rank)
        first = yield from node_comm.bcast(comm.rank, root=0)
        with pytest.raises(MPICommError):
            yield from comm.split_type(split_type=1234)
        return (node_comm.rank, first)

    results = MPIWorld(multirail_smp_cluster(**SMP)).run(program)
    # Highest world rank on each node became node rank 0.
    assert results == [(1, 1), (0, 1), (1, 3), (0, 3)]


# ---------------------------------------------------------------------------
# lane steering (ch_mad)
# ---------------------------------------------------------------------------

def test_direct_port_lane_rotation():
    def program(mpi):
        comm = mpi.comm_world
        device = comm.env.inter_device
        dest = 2 if comm.rank < 2 else 0  # someone off-node
        assert device.lane_count(dest) == 2
        lane0 = device.direct_port(dest, lane=0)
        lane1 = device.direct_port(dest, lane=1)
        assert lane0.channel.protocol != lane1.channel.protocol
        # Lanes beyond the rail count fold back, so width degradation
        # (a dead rail) never strands a lane.
        assert device.direct_port(dest, lane=2) is lane0
        # No lane argument preserves the classic single-rail selection.
        assert device.direct_port(dest) is lane0
        yield from comm.barrier()

    MPIWorld(multirail_smp_cluster(**SMP)).run(program)


def test_multilane_allreduce_uses_both_rails():
    world = MPIWorld(multirail_smp_cluster(
        nodes=2, processes_per_node=1, rails=2))
    instruments = install_instrumentation(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        data = np.arange(64.0) + comm.rank
        total = yield from comm.allreduce(data, SUM,
                                          algorithm="multilane")
        return tuple(total.tolist())

    results = world.run(program)
    expected = tuple((np.arange(64.0) * 2 + 1).tolist())
    assert results == [expected] * 2
    sends = {}
    for metric in instruments.metrics.collect():
        labels = dict(metric.labels)
        if metric.name == "chmad.packets" and labels.get("dir") == "send":
            key = labels["protocol"]
            sends[key] = sends.get(key, 0) + metric.value
    assert sends.get("sisci", 0) > 0 and sends.get("sisci#1", 0) > 0


# ---------------------------------------------------------------------------
# removed free-function shims
# ---------------------------------------------------------------------------

def test_algorithms_module_free_functions_are_errors():
    with pytest.raises(ConfigurationError, match="algorithm='linear'"):
        legacy.bcast_linear(None, "x", root=0)
    with pytest.raises(ConfigurationError, match="algorithm='binomial'"):
        legacy.bcast_binomial(None, "x", root=0)
    with pytest.raises(ConfigurationError,
                       match="algorithm='recursive_doubling'"):
        legacy.allreduce_recursive_doubling(None, 1, SUM)
    with pytest.raises(ConfigurationError, match="algorithm='bruck'"):
        legacy.allgather_bruck(None, 1)


def test_algorithm_dicts_keep_their_historical_contents():
    assert set(legacy.BCAST_ALGORITHMS) == {"linear", "binomial"}
    assert set(legacy.ALLREDUCE_ALGORITHMS) == \
        {"reduce_bcast", "recursive_doubling"}
    # The dict entries are the registry implementations, not the shims:
    # iterating them must not spray DeprecationWarnings.
    from repro.mpi.coll.flat import allreduce_recursive_doubling
    assert legacy.ALLREDUCE_ALGORITHMS["recursive_doubling"] \
        is allreduce_recursive_doubling


# ---------------------------------------------------------------------------
# the performance claim
# ---------------------------------------------------------------------------

def test_hier_allreduce_beats_flat_on_smp_cluster():
    from repro.bench.collectives import collective_bench

    kwargs = dict(operation="allreduce", ranks=16, processes_per_node=2,
                  rails=2, size=65536, reps=1, warmup=1)
    flat = collective_bench(algorithm="default", **kwargs)
    hier = collective_bench(algorithm="hier", **kwargs)
    assert flat["checksum"] == hier["checksum"]
    assert hier["mean_ns"] < flat["mean_ns"]
