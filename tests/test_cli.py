"""The consolidated ``python -m repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_run_lists_kinds(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    for kind in ("mpi_pingpong", "raw_pingpong", "baseline_point",
                 "fuzz_workload"):
        assert kind in out


def test_run_requires_kind(capsys):
    assert main(["run"]) == 2


def test_run_executes_one_job_and_prints_payload(capsys):
    assert main(["run", "baseline_point", "-p", "model=ScaMPI",
                 "-p", "size=1024"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["job"]["kind"] == "baseline_point"
    assert doc["payload"]["model"] == "ScaMPI"
    assert doc["payload"]["latency_us"] > 0
    assert len(doc["result_digest"]) == 64


def test_run_uses_cache_on_rerun(tmp_path, capsys):
    argv = ["run", "baseline_point", "-p", "model=ScaMPI", "-p", "size=16",
            "--cache", str(tmp_path)]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert not first["cached"]
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["cached"]
    assert second["result_digest"] == first["result_digest"]
    assert second["payload"] == first["payload"]


def test_sweep_lists_figures(capsys):
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "figure6_tcp" in out and "figure9_multiprotocol" in out


def test_sweep_rejects_unknown_figure(capsys):
    assert main(["sweep", "figure99"]) == 2


def test_fuzz_rejects_unknown_workload(capsys):
    assert main(["fuzz", "--workload", "nope"]) == 2


def test_report_rejects_unknown_target(capsys):
    assert main(["report", "nope"]) == 2


def test_fuzz_single_seed_output_format(capsys):
    assert main(["fuzz", "--workload", "mixed", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "ok   mixed seed=2" in out
    assert "all 1 runs clean" in out


@pytest.mark.slow
def test_sweep_goldens_round_trip(tmp_path, capsys):
    goldens = tmp_path / "g.json"
    assert main(["sweep", "figure6_tcp", "--sizes", "4", "--quiet",
                 "--write-goldens", str(goldens)]) == 0
    capsys.readouterr()
    recorded = json.loads(goldens.read_text())
    assert recorded["figure"] == "figure6_tcp"
    assert recorded["sizes"] == [4]
    assert len(recorded["jobs"]) == 3  # ch_mad, ch_p4, raw_Madeleine

    # A re-run (serial or parallel) must match the recorded digests.
    assert main(["sweep", "figure6_tcp", "--sizes", "4", "--quiet",
                 "--goldens", str(goldens)]) == 0
    assert "digests match" in capsys.readouterr().out

    # Tampered goldens must fail the check.
    tampered = dict(recorded)
    tampered["jobs"] = {k: "0" * 64 for k in recorded["jobs"]}
    goldens.write_text(json.dumps(tampered))
    assert main(["sweep", "figure6_tcp", "--sizes", "4", "--quiet",
                 "--goldens", str(goldens)]) == 1


@pytest.mark.slow
def test_sweep_matches_committed_goldens_in_parallel(capsys):
    # The same digests CI checks with 2 workers: parallel execution must
    # reproduce the committed serial results bit for bit.
    assert main(["sweep", "figure6_tcp", "--sizes", "4,1024", "--quiet",
                 "--workers", "2",
                 "--goldens", "tests/goldens/figure6_tcp_small.json"]) == 0
    assert "digests match" in capsys.readouterr().out


@pytest.mark.slow
def test_sweep_renders_figure(capsys):
    assert main(["sweep", "figure6_tcp", "--sizes", "4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "ch_mad" in out and "ch_p4" in out


def test_legacy_fuzz_module_cli_was_removed():
    import repro.check.fuzz as fuzz_mod

    # The deprecated `python -m repro.check.fuzz` shim is gone; the
    # consolidated `python -m repro fuzz` subcommand is the one CLI.
    assert not hasattr(fuzz_mod, "main")
