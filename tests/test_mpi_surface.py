"""Tests for the extended MPI surface: persistent requests, pack/unpack,
attribute caching, reduce_scatter/alltoallv, datatype dup/resized."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPIDatatypeError, MPIError, MPIRequestError
from repro.mpi.datatypes import DOUBLE, INT, contiguous, create_resized, dup, vector
from repro.mpi.packbuf import pack, pack_size, unpack
from repro.mpi.reduce_ops import MAX, SUM
from tests.helpers import run_ranks


class TestPersistentRequests:
    def test_halo_loop(self):
        """The stencil idiom: init once, start/wait per iteration."""
        STEPS = 5

        def program(mpi):
            comm = mpi.comm_world
            other = 1 - comm.rank
            buf = np.zeros(4, dtype=np.float64)
            send_req = comm.send_init(buf, dest=other, tag=1)
            recv_req = comm.recv_init(source=other, tag=1)
            got = []
            for step in range(STEPS):
                buf[:] = comm.rank * 100 + step
                send_req.start()
                recv_req.start()
                data, _ = yield from recv_req.wait()
                yield from send_req.wait()
                got.append(float(data[0]))
            send_req.free()
            recv_req.free()
            assert send_req.starts == STEPS
            return got

        results = run_ranks(program)
        assert results[0] == [100.0 + s for s in range(5)]
        assert results[1] == [0.0 + s for s in range(5)]

    def test_start_while_active_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.recv_init(source=1, tag=1)
                req.start()
                with pytest.raises(MPIRequestError, match="already-active"):
                    req.start()
                data, _ = yield from req.wait()
                return data
            yield from comm.send("x", dest=0, tag=1)
            return None

        assert run_ranks(program)[0] == "x"

    def test_wait_inactive_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            req = comm.recv_init(source=0)
            with pytest.raises(MPIRequestError, match="inactive"):
                yield from req.wait()
            yield from comm.barrier()
            return None

        run_ranks(program)

    def test_free_active_raises_then_inactive_ok(self):
        def program(mpi):
            comm = mpi.comm_world
            other = 1 - comm.rank
            send_req = comm.send_init(comm.rank, dest=other, tag=2)
            send_req.start()
            with pytest.raises(MPIRequestError, match="active"):
                send_req.free()
            data, _ = yield from comm.recv(source=other, tag=2)
            yield from send_req.wait()
            send_req.free()
            with pytest.raises(MPIRequestError, match="freed"):
                send_req.start()
            return data

        assert run_ranks(program) == [1, 0]

    def test_startall(self):
        from repro.mpi.persistent import start_all

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.send_init(i, dest=1, tag=i) for i in range(3)]
                start_all(reqs)
                for req in reqs:
                    yield from req.wait()
                return None
            out = []
            for i in range(3):
                data, _ = yield from comm.recv(source=0, tag=i)
                out.append(data)
            return out

        assert run_ranks(program)[1] == [0, 1, 2]


class TestPackUnpack:
    def test_roundtrip_two_types(self):
        """The MPI-1 mixed-buffer idiom: int count + double payload."""
        header = np.array([3], dtype=np.int32)
        payload = np.array([1.5, 2.5, 3.5], dtype=np.float64)
        buf = np.zeros(pack_size(1, INT) + pack_size(3, DOUBLE),
                       dtype=np.uint8)
        pos = pack(header, 1, INT, buf, 0)
        pos = pack(payload, 3, DOUBLE, buf, pos)
        assert pos == buf.size

        out_header = np.zeros(1, dtype=np.int32)
        pos = unpack(buf, 0, out_header, 1, INT)
        out_payload = np.zeros(int(out_header[0]), dtype=np.float64)
        unpack(buf, pos, out_payload, 3, DOUBLE)
        assert np.array_equal(out_payload, payload)

    def test_strided_pack(self):
        column = vector(3, 1, 4, DOUBLE).commit()
        matrix = np.arange(12, dtype=np.float64)
        buf = np.zeros(column.size, dtype=np.uint8)
        pack(matrix, 1, column, buf, 0)
        out = np.zeros(12, dtype=np.float64)
        unpack(buf, 0, out, 1, column)
        assert out[0] == 0 and out[4] == 4 and out[8] == 8
        assert out[1] == 0

    def test_overflow_rejected(self):
        buf = np.zeros(4, dtype=np.uint8)
        with pytest.raises(MPIDatatypeError, match="overflows"):
            pack(np.zeros(2, dtype=np.int32), 2, INT, buf, 0)

    def test_underrun_rejected(self):
        buf = np.zeros(4, dtype=np.uint8)
        with pytest.raises(MPIDatatypeError, match="overruns"):
            unpack(buf, 2, np.zeros(1, dtype=np.int32), 1, INT)

    def test_requires_uint8(self):
        with pytest.raises(MPIDatatypeError, match="uint8"):
            pack(np.zeros(1, dtype=np.int32), 1, INT,
                 np.zeros(4, dtype=np.int32), 0)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        data = np.array(values, dtype=np.float64)
        t = contiguous(len(values), DOUBLE).commit()
        buf = np.zeros(pack_size(1, t), dtype=np.uint8)
        pack(data, 1, t, buf, 0)
        out = np.zeros_like(data)
        unpack(buf, 0, out, 1, t)
        assert np.array_equal(out, data)


class TestAttributes:
    def test_set_get_delete(self):
        def program(mpi):
            comm = mpi.comm_world
            comm.set_attr("app.phase", 3)
            assert comm.get_attr("app.phase") == 3
            assert comm.get_attr("missing", default="d") == "d"
            comm.delete_attr("app.phase")
            comm.delete_attr("app.phase")  # idempotent
            assert comm.get_attr("app.phase") is None
            yield from comm.barrier()
            return True

        assert run_ranks(program) == [True, True]

    def test_attributes_do_not_propagate_to_dup(self):
        def program(mpi):
            comm = mpi.comm_world
            comm.set_attr("k", 1)
            dup_comm = yield from comm.dup()
            return dup_comm.get_attr("k")

        assert run_ranks(program) == [None, None]


class TestExtraCollectives:
    def test_reduce_scatter(self):
        def program(mpi):
            comm = mpi.comm_world
            # Rank r contributes [r*10 + slot for each slot].
            contributions = [comm.rank * 10 + slot for slot in range(comm.size)]
            result = yield from comm.reduce_scatter(contributions, op=SUM)
            return result

        results = run_ranks(program, nranks=3)
        # Slot s receives sum over r of (r*10 + s) = 30 + 3s.
        assert results == [30, 33, 36]

    def test_reduce_scatter_max(self):
        def program(mpi):
            comm = mpi.comm_world
            contributions = [(comm.rank + 1) * (slot + 1)
                             for slot in range(comm.size)]
            result = yield from comm.reduce_scatter(contributions, op=MAX)
            return result

        results = run_ranks(program, nranks=3)
        assert results == [3, 6, 9]

    def test_reduce_scatter_wrong_length(self):
        def program(mpi):
            comm = mpi.comm_world
            with pytest.raises(MPIError):
                yield from comm.reduce_scatter([1], op=SUM)
            yield from comm.barrier()
            return None

        run_ranks(program)

    def test_alltoallv_variable_payloads(self):
        def program(mpi):
            comm = mpi.comm_world
            outgoing = [b"x" * (dest + 1) * (comm.rank + 1)
                        for dest in range(comm.size)]
            result = yield from comm.alltoallv(outgoing)
            return [len(item) for item in result]

        results = run_ranks(program, nranks=3)
        for me, lengths in enumerate(results):
            assert lengths == [(me + 1) * (src + 1) for src in range(3)]


class TestDatatypeDupResized:
    def test_dup_is_independent(self):
        base = contiguous(4, INT).commit()
        copy = dup(base)
        assert not copy.committed
        copy.commit()
        buf = np.arange(4, dtype=np.int32)
        assert np.array_equal(copy.pack(buf), base.pack(buf))

    def test_resized_extent_changes_stride(self):
        # One int per instance, strided out to 12 bytes.
        t = create_resized(INT, lb=0, extent=12).commit()
        buf = np.arange(9, dtype=np.int32)
        packed = t.pack(buf, count=3)
        assert np.array_equal(packed, [0, 3, 6])

    def test_resized_interleave_idiom(self):
        """Scatter columns of a row-major matrix via resized vector."""
        rows, cols = 3, 4
        column = vector(rows, 1, cols, DOUBLE)
        col_type = create_resized(column, lb=0, extent=DOUBLE.extent).commit()
        matrix = np.arange(rows * cols, dtype=np.float64)
        packed = col_type.pack(matrix, count=cols)
        expected = matrix.reshape(rows, cols).T.ravel()
        assert np.array_equal(packed, expected)

    def test_negative_lb_shift(self):
        t = create_resized(INT, lb=-4, extent=8).commit()
        buf = np.arange(6, dtype=np.int32)
        # Elements now sit one int *after* each instance start.
        assert np.array_equal(t.pack(buf, count=2), [1, 3])

    def test_bad_lb_rejected(self):
        with pytest.raises(MPIDatatypeError, match="lower bound"):
            create_resized(INT, lb=4, extent=8)

    def test_bad_extent_rejected(self):
        with pytest.raises(MPIDatatypeError):
            create_resized(INT, lb=0, extent=0)
