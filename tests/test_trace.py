"""Tests for structured tracing and its stack integration."""

from repro.cluster import MPIWorld, two_node_cluster
from repro.sim import Engine
from repro.sim.engine import install_instrumentation
from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer, span_durations


class TestTracer:
    def test_disabled_by_default(self):
        engine = Engine()
        assert engine.tracer is NULL_TRACER
        engine.tracer.emit("anything", x=1)  # no-op, no error
        assert engine.tracer.select("anything") == []

    def test_emit_records_time_and_fields(self):
        engine = Engine()
        tracer = install_instrumentation(engine).tracer
        engine.schedule(100, lambda: tracer.emit("evt", key="v"))
        engine.run()
        (record,) = tracer.records
        assert record.time == 100
        assert record.category == "evt"
        assert record["key"] == "v"

    def test_select_filters_by_fields(self):
        engine = Engine()
        tracer = install_instrumentation(engine).tracer
        tracer.emit("msg", dst=1)
        tracer.emit("msg", dst=2)
        tracer.emit("other", dst=1)
        assert len(tracer.select("msg")) == 2
        assert len(tracer.select("msg", dst=2)) == 1
        assert tracer.categories() == {"msg", "other"}

    def test_sink_called_live(self):
        engine = Engine()
        tracer = install_instrumentation(engine).tracer
        seen = []
        tracer.sink = seen.append
        tracer.emit("x")
        assert len(seen) == 1

    def test_disabled_tracer_records_nothing(self):
        engine = Engine()
        tracer = Tracer(engine, enabled=False)
        tracer.emit("x")
        assert tracer.records == []

    def test_clear(self):
        engine = Engine()
        tracer = install_instrumentation(engine).tracer
        tracer.emit("x")
        tracer.clear()
        assert tracer.records == []

    def test_span_durations(self):
        records = [
            TraceRecord(10, "start", {"id": "a"}),
            TraceRecord(15, "start", {"id": "b"}),
            TraceRecord(30, "end", {"id": "a"}),
            TraceRecord(75, "end", {"id": "b"}),
        ]
        assert span_durations(records, "start", "end", "id") == {
            "a": 20, "b": 60,
        }


class TestStackIntegration:
    def _traced_world(self, size=100):
        world = MPIWorld(two_node_cluster(networks=("sisci",)))
        tracer = install_instrumentation(world.engine).tracer

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"", dest=1, tag=1, size=size)
            else:
                yield from comm.recv(source=0, tag=1)

        world.run(program)
        return tracer

    def test_adi_send_traced_with_mode(self):
        tracer = self._traced_world(size=100)
        (record,) = tracer.select("adi.send")
        assert record["mode"] == "eager"
        assert record["device"] == "ch_mad"
        assert record["size"] == 100

    def test_rendezvous_traced(self):
        tracer = self._traced_world(size=100_000)
        (record,) = tracer.select("adi.send")
        assert record["mode"] == "rendezvous"
        pkts = [r["pkt"] for r in tracer.select("chmad.send")]
        assert pkts == ["MAD_REQUEST_PKT", "MAD_SENDOK_PKT", "MAD_RNDV_PKT"]

    def test_network_deliveries_traced(self):
        tracer = self._traced_world(size=100)
        deliveries = tracer.select("net.deliver", fabric="sisci")
        assert len(deliveries) == 1
        assert deliveries[0]["latency"] > 0

    def test_eager_single_packet(self):
        tracer = self._traced_world(size=100)
        pkts = [r["pkt"] for r in tracer.select("chmad.send")]
        assert pkts == ["MAD_SHORT_PKT"]
