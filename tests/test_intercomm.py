"""Tests for intercommunicators (create, p2p, merge)."""

import pytest

from repro.errors import MPICommError, MPIRankError
from repro.mpi.constants import UNDEFINED
from repro.mpi.intercomm import Intercommunicator, create_intercomm
from repro.mpi.reduce_ops import SUM
from tests.helpers import run_ranks


def split_and_join(mpi, nsplit):
    """Split world into two halves and build the intercommunicator."""
    comm = mpi.comm_world
    color = 0 if comm.rank < nsplit else 1
    local = yield from comm.split(color)
    local_leader = 0
    remote_leader = 0 if color == 1 else nsplit
    inter = yield from create_intercomm(local, local_leader, comm,
                                        remote_leader)
    return local, inter, color


class TestCreate:
    def test_groups_and_sizes(self):
        def program(mpi):
            local, inter, color = yield from split_and_join(mpi, 2)
            return (color, inter.rank, inter.size, inter.remote_size,
                    inter.is_inter)

        results = run_ranks(program, nranks=5)
        assert results[0] == (0, 0, 2, 3, True)
        assert results[1] == (0, 1, 2, 3, True)
        assert results[2] == (1, 0, 3, 2, True)
        assert results[4] == (1, 2, 3, 2, True)

    def test_context_agreed_across_sides(self):
        def program(mpi):
            # Skew one side's context counter before the handshake.
            comm = mpi.comm_world
            if comm.rank < 2:
                sub = yield from comm.split(0 if comm.rank < 2 else 1)
            else:
                sub = yield from comm.split(1)
            if comm.rank >= 2:
                extra = yield from sub.dup()   # burns a context on side B
            inter = yield from create_intercomm(sub, 0, comm,
                                                2 if comm.rank < 2 else 0)
            return inter.context_id

        results = run_ranks(program, nranks=4)
        assert len(set(results)) == 1, "all sides must share one context"

    def test_overlapping_groups_rejected(self):
        from repro.mpi.group import Group

        def program(mpi):
            comm = mpi.comm_world
            with pytest.raises(MPICommError, match="overlap"):
                Intercommunicator(mpi, comm.group, Group([0]), 99, comm)
            yield from comm.barrier()

        run_ranks(program)


class TestIntercommP2P:
    def test_ranks_address_remote_group(self):
        def program(mpi):
            local, inter, color = yield from split_and_join(mpi, 2)
            # Local rank 0 of side A talks to local rank 0 of side B.
            if inter.rank == 0:
                yield from inter.send(f"from-side-{color}", dest=0, tag=1)
                data, status = yield from inter.recv(source=0, tag=1)
                return (data, status.source)
            return None

        results = run_ranks(program, nranks=4)
        assert results[0] == ("from-side-1", 0)
        assert results[2] == ("from-side-0", 0)

    def test_rank_range_checked_against_remote(self):
        def program(mpi):
            local, inter, color = yield from split_and_join(mpi, 3)
            # Side A (3 ranks) faces side B (1 rank): dest 2 is invalid
            # for side A's sends even though side A itself has rank 2.
            if color == 0 and inter.rank == 0:
                with pytest.raises(MPIRankError):
                    yield from inter.send("x", dest=2)
            yield from mpi.comm_world.barrier()
            return None

        run_ranks(program, nranks=4)

    def test_collectives_rejected(self):
        def program(mpi):
            local, inter, _ = yield from split_and_join(mpi, 2)
            with pytest.raises(MPICommError, match="merge"):
                yield from inter.barrier()
            yield from mpi.comm_world.barrier()
            return None

        run_ranks(program, nranks=4)


class TestMerge:
    def test_merge_produces_working_intracomm(self):
        def program(mpi):
            local, inter, color = yield from split_and_join(mpi, 2)
            merged = yield from inter.merge(high=(color == 1))
            total = yield from merged.allreduce(1, op=SUM)
            return (merged.rank, merged.size, total)

        results = run_ranks(program, nranks=4)
        assert [r[0] for r in results] == [0, 1, 2, 3]
        assert all(r[1] == 4 and r[2] == 4 for r in results)

    def test_merge_high_side_comes_second(self):
        def program(mpi):
            local, inter, color = yield from split_and_join(mpi, 2)
            merged = yield from inter.merge(high=(color == 0))
            return merged.rank

        results = run_ranks(program, nranks=4)
        # Side A (world 0,1) asked to be high: its ranks come second.
        assert results == [2, 3, 0, 1]

    def test_merge_tie_resolved_by_leading_world_rank(self):
        def program(mpi):
            local, inter, color = yield from split_and_join(mpi, 2)
            merged = yield from inter.merge(high=False)  # both claim low
            return merged.rank

        results = run_ranks(program, nranks=4)
        # Group containing world rank 0 wins "low".
        assert results == [0, 1, 2, 3]


class TestSubcommStatusTranslation:
    def test_status_source_is_comm_relative(self):
        """A side effect worth pinning: on split comms, Status.source must
        be the communicator rank, not the world rank."""
        def program(mpi):
            comm = mpi.comm_world
            sub = yield from comm.split(comm.rank % 2)
            # Odd world ranks 1,3 -> sub ranks 0,1.
            if comm.rank == 3:
                yield from sub.send("hello", dest=0, tag=1)
                return None
            if comm.rank == 1:
                data, status = yield from sub.recv(source=1, tag=1)
                return (data, status.source, status.source_world)
            return None

        results = run_ranks(program, nranks=4)
        assert results[1] == ("hello", 1, 3)
