"""Unit tests for the Madeleine II library."""

import pytest

from repro.errors import ChannelError, ConfigurationError, PackingError
from repro.madeleine import (
    MadeleineSession,
    RECEIVE_CHEAPER,
    RECEIVE_EXPRESS,
    SEND_CHEAPER,
    SEND_LATER,
    SEND_SAFER,
    mad_begin_packing,
    mad_begin_unpacking,
    mad_end_packing,
    mad_end_unpacking,
    mad_pack,
    mad_unpack,
)
from repro.units import us


def make_session(networks=("sisci",), nprocs=2):
    session = MadeleineSession()
    for protocol in networks:
        session.add_fabric(protocol)
    for _ in range(nprocs):
        session.add_process(networks=networks)
    return session


class TestSessionConstruction:
    def test_processes_get_ranks_in_order(self):
        session = make_session(nprocs=3)
        assert [p.rank for p in session.processes] == [0, 1, 2]

    def test_duplicate_fabric_rejected(self):
        session = MadeleineSession()
        session.add_fabric("tcp")
        with pytest.raises(ConfigurationError):
            session.add_fabric("tcp")

    def test_unknown_protocol_needs_explicit_params(self):
        session = MadeleineSession()
        with pytest.raises(ConfigurationError, match="canned"):
            session.add_fabric("quadrics")

    def test_process_without_board_cannot_join_channel(self):
        session = MadeleineSession()
        session.add_fabric("sisci")
        session.add_fabric("tcp")
        session.add_process(networks=("sisci", "tcp"))
        session.add_process(networks=("tcp",))
        # Only one process has an SCI board, so the default-membership
        # channel (filtered by protocol) cannot be formed.
        with pytest.raises(ConfigurationError, match="two member"):
            session.new_channel("sci-chan", "sisci")
        # A TCP channel over the same processes works.
        assert session.new_channel("tcp-chan", "tcp") is not None

    def test_channel_needs_two_members(self):
        session = MadeleineSession()
        session.add_fabric("sisci")
        session.add_process(networks=("sisci",))
        session.add_process(networks=())
        with pytest.raises(ConfigurationError, match="two member"):
            session.new_channel("c", "sisci")

    def test_duplicate_channel_name_rejected(self):
        session = make_session()
        session.new_channel("c", "sisci")
        with pytest.raises(ConfigurationError):
            session.new_channel("c", "sisci")

    def test_endpoint_lookup_error_lists_attached(self):
        session = make_session(networks=("sisci",))
        with pytest.raises(ConfigurationError, match="no tcp board"):
            session.processes[0].endpoint("tcp")


class TestBasicTransfer:
    def test_single_block_roundtrip(self):
        session = make_session()
        channel = session.new_channel("main", "sisci")
        p0, p1 = session.processes
        received = []

        def sender():
            msg = p0.port(channel).begin_packing(1)
            yield from msg.pack(b"payload", 7, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_packing()

        def receiver():
            msg = yield from p1.port(channel).begin_unpacking()
            data = yield from msg.unpack(7, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_unpacking()
            received.append((data, msg.source_rank))

        p0.runtime.spawn(sender, name="sender")
        p1.runtime.spawn(receiver, name="receiver")
        session.run()
        assert received == [(b"payload", 0)]

    def test_paper_figure2_example(self):
        """The size-then-array example from the paper's Figure 2."""
        session = make_session()
        channel = session.new_channel("main", "sisci")
        p0, p1 = session.processes
        array = bytes(range(256)) * 4
        out = []

        def sender():
            connection = mad_begin_packing(p0.port(channel), 1)
            yield from mad_pack(connection, len(array), 4,
                                SEND_CHEAPER, RECEIVE_EXPRESS)
            yield from mad_pack(connection, array, len(array),
                                SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from mad_end_packing(connection)

        def receiver():
            connection = yield from mad_begin_unpacking(p1.port(channel))
            size = yield from mad_unpack(connection, 4,
                                         SEND_CHEAPER, RECEIVE_EXPRESS)
            data = yield from mad_unpack(connection, size,
                                         SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from mad_end_unpacking(connection)
            out.append((size, data))

        p0.runtime.spawn(sender)
        p1.runtime.spawn(receiver)
        session.run()
        assert out == [(1024, array)]

    def test_in_order_delivery_per_connection(self):
        session = make_session()
        channel = session.new_channel("main", "sisci")
        p0, p1 = session.processes
        got = []

        def sender():
            for i in range(5):
                msg = p0.port(channel).begin_packing(1)
                yield from msg.pack(i, 4, SEND_CHEAPER, RECEIVE_CHEAPER)
                yield from msg.end_packing()

        def receiver():
            for _ in range(5):
                msg = yield from p1.port(channel).begin_unpacking()
                value = yield from msg.unpack(4, SEND_CHEAPER, RECEIVE_CHEAPER)
                yield from msg.end_unpacking()
                got.append(value)

        p0.runtime.spawn(sender)
        p1.runtime.spawn(receiver)
        session.run()
        assert got == [0, 1, 2, 3, 4]

    def test_channels_do_not_interfere(self):
        session = make_session(networks=("sisci", "tcp"))
        sci = session.new_channel("sci", "sisci")
        tcp = session.new_channel("tcp", "tcp")
        p0, p1 = session.processes
        got = {}

        def sender():
            # TCP message first, SCI second; SCI overtakes on the wire.
            m1 = p0.port(tcp).begin_packing(1)
            yield from m1.pack("slow", 64, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from m1.end_packing()
            m2 = p0.port(sci).begin_packing(1)
            yield from m2.pack("fast", 64, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from m2.end_packing()

        def receiver():
            msg = yield from p1.port(sci).begin_unpacking()
            got["sci"] = (yield from msg.unpack(64, SEND_CHEAPER, RECEIVE_CHEAPER)), session.engine.now
            yield from msg.end_unpacking()
            msg = yield from p1.port(tcp).begin_unpacking()
            got["tcp"] = (yield from msg.unpack(64, SEND_CHEAPER, RECEIVE_CHEAPER)), session.engine.now
            yield from msg.end_unpacking()

        p0.runtime.spawn(sender)
        p1.runtime.spawn(receiver)
        session.run()
        assert got["sci"][0] == "fast"
        assert got["tcp"][0] == "slow"
        assert got["sci"][1] < got["tcp"][1]

    def test_bidirectional_traffic(self):
        session = make_session()
        channel = session.new_channel("main", "sisci")
        p0, p1 = session.processes
        results = {}

        def peer(process, me, other):
            def body():
                msg = process.port(channel).begin_packing(other)
                yield from msg.pack(f"from-{me}", 16, SEND_CHEAPER, RECEIVE_CHEAPER)
                yield from msg.end_packing()
                incoming = yield from process.port(channel).begin_unpacking()
                data = yield from incoming.unpack(16, SEND_CHEAPER, RECEIVE_CHEAPER)
                yield from incoming.end_unpacking()
                results[me] = data
            return body

        p0.runtime.spawn(peer(p0, 0, 1))
        p1.runtime.spawn(peer(p1, 1, 0))
        session.run()
        assert results == {0: "from-1", 1: "from-0"}


class TestPackingRules:
    def _ports(self, session=None):
        session = session or make_session()
        channel = session.new_channel("main", "sisci")
        p0, p1 = session.processes
        return session, p0.port(channel), p1.port(channel)

    def _run_gen(self, session, gen_fn, rank=0):
        session.processes[rank].runtime.spawn(gen_fn)
        session.run()

    def test_unpack_size_mismatch_raises(self):
        session, sport, rport = self._ports()

        def sender():
            msg = sport.begin_packing(1)
            yield from msg.pack(b"xxxx", 4, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_packing()

        failures = []

        def receiver():
            msg = yield from rport.begin_unpacking()
            try:
                yield from msg.unpack(8, SEND_CHEAPER, RECEIVE_CHEAPER)
            except PackingError as exc:
                failures.append(exc)

        session.processes[0].runtime.spawn(sender)
        session.processes[1].runtime.spawn(receiver)
        session.run()
        assert len(failures) == 1

    def test_unpack_mode_mismatch_raises(self):
        session, sport, rport = self._ports()

        def sender():
            msg = sport.begin_packing(1)
            yield from msg.pack(b"x", 1, SEND_CHEAPER, RECEIVE_EXPRESS)
            yield from msg.end_packing()

        failures = []

        def receiver():
            msg = yield from rport.begin_unpacking()
            try:
                yield from msg.unpack(1, SEND_CHEAPER, RECEIVE_CHEAPER)
            except PackingError as exc:
                failures.append(exc)

        session.processes[0].runtime.spawn(sender)
        session.processes[1].runtime.spawn(receiver)
        session.run()
        assert len(failures) == 1

    def test_end_unpacking_with_remaining_blocks_raises(self):
        session, sport, rport = self._ports()

        def sender():
            msg = sport.begin_packing(1)
            yield from msg.pack(b"a", 1, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.pack(b"b", 1, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_packing()

        failures = []

        def receiver():
            msg = yield from rport.begin_unpacking()
            yield from msg.unpack(1, SEND_CHEAPER, RECEIVE_CHEAPER)
            try:
                yield from msg.end_unpacking()
            except PackingError as exc:
                failures.append(exc)

        session.processes[0].runtime.spawn(sender)
        session.processes[1].runtime.spawn(receiver)
        session.run()
        assert len(failures) == 1

    def test_empty_message_rejected(self):
        session, sport, _ = self._ports()
        failures = []

        def sender():
            msg = sport.begin_packing(1)
            try:
                yield from msg.end_packing()
            except PackingError as exc:
                failures.append(exc)

        self._run_gen(session, sender)
        assert len(failures) == 1

    def test_pack_after_end_rejected(self):
        session, sport, rport = self._ports()
        failures = []

        def sender():
            msg = sport.begin_packing(1)
            yield from msg.pack(b"a", 1, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_packing()
            try:
                yield from msg.pack(b"b", 1, SEND_CHEAPER, RECEIVE_CHEAPER)
            except PackingError as exc:
                failures.append(exc)

        def receiver():
            msg = yield from rport.begin_unpacking()
            yield from msg.unpack(1, SEND_CHEAPER, RECEIVE_CHEAPER)
            yield from msg.end_unpacking()

        session.processes[0].runtime.spawn(sender)
        session.processes[1].runtime.spawn(receiver)
        session.run()
        assert len(failures) == 1

    def test_pack_requires_mode_flags(self):
        session, sport, _ = self._ports()
        failures = []

        def sender():
            msg = sport.begin_packing(1)
            try:
                yield from msg.pack(b"a", 1, "cheap", RECEIVE_CHEAPER)
            except PackingError as exc:
                failures.append(exc)

        self._run_gen(session, sender)
        assert len(failures) == 1

    def test_self_connection_rejected(self):
        _, sport, _ = self._ports()
        with pytest.raises(ChannelError, match="ch_self"):
            sport.begin_packing(0)

    def test_unknown_remote_rejected(self):
        _, sport, _ = self._ports()
        with pytest.raises(ChannelError, match="not a member"):
            sport.begin_packing(7)


class TestCosts:
    def test_express_charges_copies_both_sides(self):
        """An EXPRESS block must cost more than a CHEAPER one (copies)."""
        times = {}
        for mode in (RECEIVE_EXPRESS, RECEIVE_CHEAPER):
            session = make_session()
            channel = session.new_channel("main", "sisci")
            p0, p1 = session.processes
            n = 64 * 1024

            def sender():
                msg = p0.port(channel).begin_packing(1)
                yield from msg.pack(b"", n, SEND_CHEAPER, mode)
                yield from msg.end_packing()

            def receiver():
                msg = yield from p1.port(channel).begin_unpacking()
                yield from msg.unpack(n, SEND_CHEAPER, mode)
                yield from msg.end_unpacking()

            p0.runtime.spawn(sender)
            p1.runtime.spawn(receiver)
            times[mode] = session.run()
        assert times[RECEIVE_EXPRESS] > times[RECEIVE_CHEAPER]

    def test_send_safer_charges_sender_copy(self):
        costs = {}
        for mode in (SEND_SAFER, SEND_LATER):
            session = make_session()
            channel = session.new_channel("main", "sisci")
            p0, p1 = session.processes
            n = 32 * 1024

            def sender():
                msg = p0.port(channel).begin_packing(1)
                yield from msg.pack(b"", n, mode, RECEIVE_CHEAPER)
                yield from msg.end_packing()

            def receiver():
                msg = yield from p1.port(channel).begin_unpacking()
                yield from msg.unpack(n, mode, RECEIVE_CHEAPER)
                yield from msg.end_unpacking()

            p0.runtime.spawn(sender)
            p1.runtime.spawn(receiver)
            session.run()
            costs[mode] = p0.runtime.cpu.busy_time
        assert costs[SEND_SAFER] > costs[SEND_LATER]

    def test_second_block_charges_pack_op_cost(self):
        busy = {}
        for nblocks in (1, 2):
            session = make_session()
            channel = session.new_channel("main", "sisci")
            p0, p1 = session.processes

            def sender():
                msg = p0.port(channel).begin_packing(1)
                for _ in range(nblocks):
                    yield from msg.pack(b"x", 1, SEND_CHEAPER, RECEIVE_CHEAPER)
                yield from msg.end_packing()

            def receiver():
                msg = yield from p1.port(channel).begin_unpacking()
                for _ in range(nblocks):
                    yield from msg.unpack(1, SEND_CHEAPER, RECEIVE_CHEAPER)
                yield from msg.end_unpacking()

            p0.runtime.spawn(sender)
            p1.runtime.spawn(receiver)
            session.run()
            busy[nblocks] = p0.runtime.cpu.busy_time
        pack_cost = session.fabrics["sisci"].params.pack_op_cost
        assert busy[2] - busy[1] >= pack_cost
