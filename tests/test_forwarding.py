"""Tests for the gateway-forwarding extension (paper §6 future work)."""

import pytest

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec
from repro.cluster.topology import (
    compute_gateway_routes,
    direct_protocols,
    gateway_ranks,
    reachability_matrix,
)
from repro.errors import ConfigurationError, RouteError
from repro.mpi.devices.ch_mad.forwarding import ForwardWrapper
from repro.mpi.reduce_ops import SUM


def island_config(forwarding=True):
    """SCI island <-gateway-> Myrinet island, no common network."""
    return ClusterConfig(nodes=[
        NodeSpec("sci0", networks=("sisci",)),
        NodeSpec("gw", networks=("sisci", "bip")),
        NodeSpec("myri0", networks=("bip",)),
    ], device="ch_mad", forwarding=forwarding)


def chain_config():
    """Two gateways in a row: sisci | sisci+tcp | tcp+bip | bip."""
    return ClusterConfig(nodes=[
        NodeSpec("a", networks=("sisci",)),
        NodeSpec("b", networks=("sisci", "tcp")),
        NodeSpec("c", networks=("tcp", "bip")),
        NodeSpec("d", networks=("bip",)),
    ], device="ch_mad", forwarding=True)


class TestTopology:
    def test_direct_protocols(self):
        config = island_config()
        assert direct_protocols(config, 0, 1) == {"sisci"}
        assert direct_protocols(config, 1, 2) == {"bip"}
        assert direct_protocols(config, 0, 2) == frozenset()

    def test_reachability_matrix(self):
        matrix = reachability_matrix(island_config())
        assert matrix[(0, 1)] and matrix[(1, 2)]
        assert not matrix[(0, 2)]

    def test_gateway_ranks(self):
        assert gateway_ranks(island_config()) == [1]

    def test_routes_only_for_indirect_pairs(self):
        routes = compute_gateway_routes(island_config())
        assert routes == {0: {2: 1}, 2: {0: 1}}

    def test_multi_hop_routes(self):
        routes = compute_gateway_routes(chain_config())
        assert routes[0][3] == 1   # a -> d goes via b first
        assert routes[1][3] == 2   # b -> d goes via c
        assert routes[3][0] == 2   # d -> a goes via c

    def test_disconnected_raises(self):
        config = ClusterConfig(nodes=[
            NodeSpec("a", networks=("sisci",)),
            NodeSpec("x", networks=("sisci",)),
            NodeSpec("b", networks=("bip",)),
            NodeSpec("y", networks=("bip",)),
        ], device="ch_mad")
        with pytest.raises(ConfigurationError, match="cannot reach"):
            compute_gateway_routes(config)


class TestForwardWrapper:
    def test_hop_counting(self):
        w = ForwardWrapper(2, 0, None, None, 0)
        assert w.next_hop().hops == 1

    def test_loop_guard(self):
        w = ForwardWrapper(2, 0, None, None, 0, hops=ForwardWrapper.MAX_HOPS)
        with pytest.raises(RouteError, match="loop"):
            w.next_hop()


class TestForwardedTraffic:
    def _run(self, program, config=None):
        world = MPIWorld(config or island_config())
        return world.run(program), world

    def test_eager_across_gateway(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"ping", dest=2, tag=1)
                data, _ = yield from comm.recv(source=2, tag=2)
                return data
            if comm.rank == 2:
                data, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(b"pong", dest=0, tag=2)
                return data
            return None

        results, world = self._run(program)
        assert results[0] == b"pong" and results[2] == b"ping"
        assert world.envs[1].inter_device.packets_relayed == 2

    def test_rendezvous_across_gateway(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"", dest=2, tag=1, size=500_000)
                return None
            if comm.rank == 2:
                _, status = yield from comm.recv(source=0, tag=1)
                return status.count
            return None

        results, world = self._run(program)
        assert results[2] == 500_000
        # Request, ack, and data all relayed: >= 3 relays.
        assert world.envs[1].inter_device.packets_relayed >= 3

    def test_two_hop_chain(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send("end-to-end", dest=3, tag=1)
                return None
            if comm.rank == 3:
                data, _ = yield from comm.recv(source=0, tag=1)
                return data
            return None

        results, world = self._run(program, chain_config())
        assert results[3] == "end-to-end"
        assert world.envs[1].inter_device.packets_relayed == 1
        assert world.envs[2].inter_device.packets_relayed == 1

    def test_collectives_over_forwarded_topology(self):
        def program(mpi):
            comm = mpi.comm_world
            total = yield from comm.allreduce(comm.rank + 1, op=SUM)
            gathered = yield from comm.gather(comm.rank, root=0)
            yield from comm.barrier()
            return (total, gathered)

        results, _ = self._run(program)
        assert all(r[0] == 6 for r in results)
        assert results[0][1] == [0, 1, 2]

    def test_without_forwarding_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            if mpi.rank == 0:
                with pytest.raises(ConfigurationError,
                                   match="shares no network"):
                    yield from comm.send(b"x", dest=2)
            return None
            yield  # pragma: no cover

        self._run(program, island_config(forwarding=False))

    def test_forwarding_latency_is_sum_of_hops_plus_relay(self):
        """Forwarded latency must exceed each single hop but stay within
        the sum of hops plus a bounded relay cost."""
        from repro.bench.pingpong import custom_pingpong
        direct_sci = custom_pingpong(island_config(), 4, ranks=(0, 1),
                                     label="sci-hop")
        direct_bip = custom_pingpong(island_config(), 4, ranks=(1, 2),
                                     label="bip-hop")
        via_gateway = custom_pingpong(island_config(), 4, ranks=(0, 2),
                                      label="forwarded")
        hop_sum = direct_sci.one_way_ns + direct_bip.one_way_ns
        assert via_gateway.one_way_ns > max(direct_sci.one_way_ns,
                                            direct_bip.one_way_ns)
        assert hop_sum < via_gateway.one_way_ns < hop_sum + 40_000
