"""The batch runner: specs, digests, cache, retry, parallel == serial."""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    CACHE_SCHEMA,
    EXECUTORS,
    JobSpec,
    ResultCache,
    Runner,
    canonical_json,
    execute,
    payload_digest,
    register,
    run_specs,
)
from repro.errors import ConfigurationError


@pytest.fixture
def scratch_kind():
    """Register a throwaway executor kind; unregister on teardown."""
    registered = []

    def _register(kind, fn):
        EXECUTORS[kind] = fn
        registered.append(kind)
        return fn

    yield _register
    for kind in registered:
        del EXECUTORS[kind]


# ---------------------------------------------------------------------------
# spec digests
# ---------------------------------------------------------------------------

def test_same_spec_same_digest():
    a = JobSpec(kind="k", params={"x": 1, "y": [1, 2]}, seed=3)
    b = JobSpec(kind="k", params={"y": [1, 2], "x": 1}, seed=3,
                label="cosmetic")
    # Param insertion order and the display label are not code-relevant.
    assert a.digest == b.digest


@pytest.mark.parametrize("change", [
    {"params": {"x": 2, "y": [1, 2]}},          # value change
    {"params": {"x": 1, "y": [2, 1]}},          # list order is meaningful
    {"params": {"x": 1, "y": [1, 2], "z": 0}},  # added field
    {"params": {"x": 1}},                       # removed field
    {"seed": 4},
    {"kind": "other"},
])
def test_any_config_field_change_changes_digest(change):
    base = dict(kind="k", params={"x": 1, "y": [1, 2]}, seed=3)
    assert JobSpec(**base).digest != JobSpec(**{**base, **change}).digest


def test_digest_includes_schema_version():
    spec = JobSpec(kind="k")
    assert spec.canonical()["schema"] == CACHE_SCHEMA
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------

def test_unknown_kind_raises():
    with pytest.raises(ConfigurationError):
        execute(JobSpec(kind="no-such-kind"))


def test_registered_kind_executes(scratch_kind):
    scratch_kind("double", lambda params, seed: params["x"] * 2 + seed)
    assert execute(JobSpec(kind="double", params={"x": 5}, seed=1)) == 11


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

def test_cache_round_trip_and_digest_stability(tmp_path, scratch_kind):
    calls = []
    scratch_kind("echo", lambda params, seed: (calls.append(1),
                                               {"v": params["v"]})[1])
    cache = ResultCache(tmp_path)
    spec = JobSpec(kind="echo", params={"v": 7})

    first = Runner(cache=cache).run([spec])[0]
    assert not first.cached and first.attempts == 1
    assert len(calls) == 1
    assert len(cache) == 1

    second = Runner(cache=cache).run([spec])[0]
    assert second.cached and second.attempts == 0
    assert len(calls) == 1  # warm hit: the executor never ran again
    assert second.payload == first.payload
    assert second.result_digest == first.result_digest
    assert second.result_digest == payload_digest({"v": 7})


def test_cache_misses_on_any_field_change(tmp_path, scratch_kind):
    scratch_kind("echo", lambda params, seed: dict(params, seed=seed))
    cache = ResultCache(tmp_path)
    run_specs([JobSpec(kind="echo", params={"v": 7})], cache=cache)
    for changed in (JobSpec(kind="echo", params={"v": 8}),
                    JobSpec(kind="echo", params={"v": 7, "w": 0}),
                    JobSpec(kind="echo", params={"v": 7}, seed=1)):
        assert cache.get(changed) is None


def test_cache_rejects_corrupt_entry(tmp_path, scratch_kind):
    scratch_kind("echo", lambda params, seed: {"v": params["v"]})
    cache = ResultCache(tmp_path)
    spec = JobSpec(kind="echo", params={"v": 7})
    run_specs([spec], cache=cache)
    path = cache.path(spec.digest)
    envelope = json.loads(path.read_text())
    envelope["payload"]["v"] = 8  # payload no longer matches result_digest
    path.write_text(json.dumps(envelope))
    assert cache.get(spec) is None  # corruption is a miss, never a wrong hit
    # ... and re-running repairs the entry.
    result = run_specs([spec], cache=cache)[0]
    assert not result.cached and result.payload == {"v": 7}
    assert cache.get(spec) is not None


# ---------------------------------------------------------------------------
# retry
# ---------------------------------------------------------------------------

def test_retry_after_worker_raise_on_first_attempt(tmp_path, scratch_kind):
    marker = tmp_path / "attempted"

    def flaky(params, seed):
        if not marker.exists():
            marker.write_text("1")
            raise RuntimeError("injected first-attempt crash")
        return {"ok": True}

    scratch_kind("flaky", flaky)
    result = Runner(retries=2, backoff_s=0).run(
        [JobSpec(kind="flaky")])[0]
    assert result.ok
    assert result.attempts == 2
    assert result.payload == {"ok": True}


def test_exhausted_retries_report_failure(scratch_kind):
    def always_fails(params, seed):
        raise RuntimeError("boom")

    scratch_kind("bad", always_fails)
    good = JobSpec(kind="mpi_pingpong", params={"size": 4, "reps": 2,
                                                "networks": ["sisci"]})
    results = Runner(retries=1, backoff_s=0).run(
        [JobSpec(kind="bad"), good])
    assert not results[0].ok
    assert "boom" in results[0].error
    assert results[0].attempts == 2  # first try + one retry
    assert results[1].ok  # one bad job does not sink the batch


# ---------------------------------------------------------------------------
# parallel == serial
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_pool_matches_serial_digests(tmp_path):
    specs = [JobSpec(kind="mpi_pingpong",
                     params={"size": size, "reps": 2, "networks": ["sisci"]},
                     label=f"pp:{size}")
             for size in (4, 256, 1024)]
    serial = Runner(workers=1).run(specs)
    pooled = Runner(workers=2).run(specs)
    assert [r.result_digest for r in serial] == \
        [r.result_digest for r in pooled]
    assert [r.payload for r in serial] == [r.payload for r in pooled]


# ---------------------------------------------------------------------------
# progress + metrics
# ---------------------------------------------------------------------------

def test_progress_lines_and_metrics(tmp_path, scratch_kind):
    scratch_kind("echo", lambda params, seed: {"v": params["v"]})
    lines = []
    cache = ResultCache(tmp_path)
    specs = [JobSpec(kind="echo", params={"v": v}, label=f"echo{v}")
             for v in range(3)]
    runner = Runner(cache=cache, out=lines.append)
    runner.run(specs)
    assert len(lines) == 3
    assert lines[0].startswith("[1/3]") and "echo0" in lines[0]
    assert runner.metrics.value("runner.jobs", status="submitted") == 3
    assert runner.metrics.value("runner.jobs", status="ok") == 3

    lines.clear()
    rerun = Runner(cache=cache, out=lines.append)
    rerun.run(specs)
    assert all("cached" in line for line in lines)
