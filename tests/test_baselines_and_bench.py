"""Tests for the analytic baselines and the benchmark harness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import ALL_BASELINES, MPICH_PM, MPI_GM, SCAMPI, SCI_MPICH
from repro.baselines.model import AnalyticMPIModel, Segment
from repro.bench.pingpong import PingPongResult, summarize_roundtrips
from repro.bench.report import (
    FigureData,
    PaperCheck,
    format_paper_checks,
    format_table,
)
from repro.bench.sweeps import (
    BANDWIDTH_SWEEP_SIZES,
    LATENCY_SWEEP_SIZES,
    sweep,
)


class TestAnalyticModel:
    def test_segment_selection(self):
        model = AnalyticMPIModel("m", "sisci", [
            Segment(100, 10.0, 1.0),
            Segment(2**62, 20.0, 0.5),
        ], source="test")
        assert model.one_way_ns(50) == 10_000 + 50
        assert model.one_way_ns(100) == 10_000 + 100
        assert model.one_way_ns(101) == 20_000 + round(101 * 0.5)

    def test_bandwidth(self):
        model = AnalyticMPIModel("m", "bip", [Segment(2**62, 0.0, 10.0)],
                                 source="test")
        # 10 ns/B = 100 MB/s.
        assert model.bandwidth_mb_s(1_000_000) == pytest.approx(100.0)
        assert model.bandwidth_mb_s(0) == 0.0

    def test_unsorted_segments_rejected(self):
        with pytest.raises(ValueError):
            AnalyticMPIModel("m", "x", [Segment(100, 1, 1), Segment(50, 1, 1)],
                             source="t")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SCAMPI.one_way_ns(-1)

    @given(st.sampled_from(list(ALL_BASELINES.values())),
           st.integers(0, 2**20))
    @settings(max_examples=80, deadline=None)
    def test_latency_monotone_in_size_within_segment(self, model, size):
        seg = model.segment_for(size)
        if size + 1 <= seg.upto:
            assert model.one_way_ns(size + 1) >= model.one_way_ns(size)


class TestBaselineCalibration:
    """The paper's comparative statements that the models must encode."""

    def test_sci_natives_beat_ch_mad_latency_target(self):
        # ch_mad SCI small-message latency is ~20 us; natives are below.
        assert SCAMPI.latency_us(4) < 20
        assert SCI_MPICH.latency_us(4) < 20
        assert SCAMPI.latency_us(4) < SCI_MPICH.latency_us(4)

    def test_sci_natives_cap_below_80(self):
        for size in (262144, 1048576, 8_000_000):
            assert SCAMPI.bandwidth_mb_s(size) < 80
            assert SCI_MPICH.bandwidth_mb_s(size) < 80

    def test_gm_weak_large_messages(self):
        assert MPI_GM.bandwidth_mb_s(1048576) < 55
        assert MPICH_PM.bandwidth_mb_s(1048576) > 100

    def test_pm_close_to_raw_madeleine_small(self):
        # ~5 us below ch_mad's ~20 us.
        assert 12 < MPICH_PM.latency_us(4) < 18

    def test_networks_declared(self):
        assert SCAMPI.network == "sisci"
        assert MPI_GM.network == "bip"


class TestPingPongResult:
    def test_summarize_min_of_roundtrips(self):
        result = summarize_roundtrips("x", 100, [2000, 1500, 1800])
        assert result.one_way_ns == 750
        assert result.reps == 3
        assert result.mean_one_way_ns == pytest.approx((2000 + 1500 + 1800) / 6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_roundtrips("x", 0, [])

    def test_derived_metrics(self):
        result = PingPongResult("x", 1_000_000, 3, 100_000_000, 1.1e8)
        assert result.latency_us == pytest.approx(100_000)
        assert result.bandwidth_mb_s == pytest.approx(10.0)
        assert "MB/s" in str(result)

    @given(st.lists(st.integers(2, 10**9), min_size=1, max_size=20),
           st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_min_never_exceeds_mean(self, roundtrips, size):
        result = summarize_roundtrips("x", size, roundtrips)
        assert result.one_way_ns <= result.mean_one_way_ns + 0.5


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.50" in text

    def test_paper_check_verdicts(self):
        ok = PaperCheck("q", paper=100.0, measured=105.0)
        bad = PaperCheck("q", paper=100.0, measured=200.0)
        assert ok.ok and not bad.ok
        assert ok.ratio == pytest.approx(1.05)
        rendered = format_paper_checks([ok, bad], "t")
        assert "DEVIATES" in rendered and "ok" in rendered

    def test_paper_check_zero_paper_value(self):
        assert PaperCheck("q", paper=0.0, measured=0.0).ratio == 1.0

    def test_figure_data_render(self):
        figure = FigureData("Fig X", "demo")
        s = figure.new_series("ch_mad")
        s.add(4, 20.0, 0.2)
        s.add(1024, 40.0, 25.0)
        figure.notes.append("hello")
        text = figure.render()
        assert "transfer time" in text and "bandwidth" in text
        assert "note: hello" in text
        assert s.at(1024) == (40.0, 25.0)

    def test_series_at_unknown_size(self):
        figure = FigureData("f", "t")
        s = figure.new_series("x")
        s.add(1, 1.0, 1.0)
        with pytest.raises(ValueError):
            s.at(999)


class TestSweeps:
    def test_paper_grids(self):
        assert LATENCY_SWEEP_SIZES == (1, 4, 16, 64, 256, 1024)
        assert BANDWIDTH_SWEEP_SIZES[-1] == 1024 * 1024

    def test_sweep_runs_measure_per_size(self):
        calls = []

        def fake_measure(size):
            calls.append(size)
            return summarize_roundtrips("x", size, [1000])

        results = sweep(fake_measure, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert [r.size for r in results] == [1, 2, 3]


class TestSimPerfSuite:
    """Smoke the wall-clock micro-benchmark harness (quick probes only)."""

    @pytest.fixture(scope="class")
    def simperf(self):
        import importlib.util
        from pathlib import Path

        path = (Path(__file__).resolve().parents[1]
                / "benchmarks" / "perf" / "simperf.py")
        spec = importlib.util.spec_from_file_location("simperf", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_quick_suite_produces_positive_rates(self, simperf):
        record = simperf.run_suite(quick=True)
        assert record["schema"] == "simperf/1"
        probes = record["probes"]
        assert probes["engine_throughput"]["events_per_sec"] > 0
        assert probes["pingpong_rate"]["events_per_sec"] > 0
        # Quick mode skips the expensive end-to-end figure probe.
        assert "figure6_wall" not in probes

    def test_quick_pingpong_latency_matches_golden(self, simperf):
        # The probe must measure the same simulated machine the golden
        # digests pin (reps differ, so only one_way min is comparable).
        result = simperf.pingpong_rate(size=1024, reps=8)
        assert result["one_way_ns"] == 256816

    def test_committed_baseline_parses_and_matches_schema(self, simperf):
        import json
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[1] / "BENCH_simperf.json"
        baseline = json.loads(baseline_path.read_text())
        assert baseline["schema"] == "simperf/1"
        assert baseline["probes"]["figure6_wall"]["latency_checksum"] == 395655228
        before = baseline["before"]["probes"]
        after = baseline["probes"]
        # The record must demonstrate the >= 2x figure6 acceptance target.
        assert before["figure6_wall"]["seconds"] >= \
            2.0 * after["figure6_wall"]["seconds"]
        assert before["figure6_wall"]["latency_checksum"] == \
            after["figure6_wall"]["latency_checksum"]
