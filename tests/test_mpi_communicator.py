"""Tests for communicator management: dup, split, create, contexts."""

import pytest

from repro.errors import MPICommError
from repro.mpi.constants import UNDEFINED
from repro.mpi.group import Group
from repro.mpi.reduce_ops import SUM
from tests.helpers import run_ranks


class TestDup:
    def test_dup_isolates_traffic(self):
        """A message sent on the dup must not match a recv on world."""
        def program(mpi):
            comm = mpi.comm_world
            dup = yield from comm.dup()
            assert dup.context_id != comm.context_id
            if comm.rank == 0:
                yield from dup.send("on-dup", dest=1, tag=1)
                yield from comm.send("on-world", dest=1, tag=1)
                return None
            world_msg, _ = yield from comm.recv(source=0, tag=1)
            dup_msg, _ = yield from dup.recv(source=0, tag=1)
            return (world_msg, dup_msg)

        assert run_ranks(program)[1] == ("on-world", "on-dup")

    def test_dup_same_ranks(self):
        def program(mpi):
            dup = yield from mpi.comm_world.dup()
            return (dup.rank, dup.size)

        assert run_ranks(program, nranks=3) == [(0, 3), (1, 3), (2, 3)]


class TestSplit:
    def test_split_even_odd(self):
        def program(mpi):
            comm = mpi.comm_world
            color = comm.rank % 2
            sub = yield from comm.split(color)
            total = yield from sub.allreduce(comm.rank, op=SUM)
            return (sub.rank, sub.size, total)

        results = run_ranks(program, nranks=4)
        # evens: world 0,2 -> sum 2; odds: world 1,3 -> sum 4.
        assert results[0] == (0, 2, 2)
        assert results[2] == (1, 2, 2)
        assert results[1] == (0, 2, 4)
        assert results[3] == (1, 2, 4)

    def test_split_key_reorders(self):
        def program(mpi):
            comm = mpi.comm_world
            sub = yield from comm.split(0, key=-comm.rank)
            return sub.rank

        # Reverse key order: highest world rank becomes rank 0.
        assert run_ranks(program, nranks=3) == [2, 1, 0]

    def test_split_undefined_returns_none(self):
        def program(mpi):
            comm = mpi.comm_world
            color = UNDEFINED if comm.rank == 0 else 1
            sub = yield from comm.split(color)
            if comm.rank == 0:
                return sub is None
            return sub.size

        results = run_ranks(program, nranks=3)
        assert results == [True, 2, 2]


class TestCreate:
    def test_create_subgroup(self):
        def program(mpi):
            comm = mpi.comm_world
            group = Group([0, 2])
            sub = yield from comm.create(group)
            if comm.rank in (0, 2):
                value = yield from sub.allreduce(1, op=SUM)
                return (sub.rank, value)
            return sub

        results = run_ranks(program, nranks=3)
        assert results[0] == (0, 2)
        assert results[1] is None
        assert results[2] == (1, 2)


class TestFree:
    def test_freed_comm_rejects_operations(self):
        def program(mpi):
            comm = mpi.comm_world
            dup = yield from comm.dup()
            dup.free()
            with pytest.raises(MPICommError):
                yield from dup.send(1, dest=0)
            yield from comm.barrier()
            return "ok"

        assert run_ranks(program) == ["ok", "ok"]


class TestEnvMisc:
    def test_wtime_advances(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            t0 = mpi.wtime()
            yield sleep(us(100))
            t1 = mpi.wtime()
            return t1 - t0

        results = run_ranks(program)
        assert all(abs(dt - 100e-6) < 1e-9 for dt in results)

    def test_world_shape(self):
        def program(mpi):
            comm = mpi.comm_world
            return (comm.rank, comm.size, mpi.node)
            yield  # pragma: no cover

        assert run_ranks(program, nranks=3) == [(0, 3, 0), (1, 3, 1), (2, 3, 2)]
