"""Fault injection, reliable transport, and channel failover.

Covers the robustness layer end to end: deterministic fault plans
(:mod:`repro.faults`), the Madeleine ack/retransmit machinery
(:mod:`repro.madeleine.reliable`), and ch_mad's channel failover —
including the acceptance scenarios: a lossy run completes with zero MPI
errors, a mid-run fabric death fails over with byte-identical
application results, and exhausting every channel raises instead of
hanging.
"""

import pytest

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec
from repro.errors import (
    ConfigurationError,
    FailoverExhaustedError,
    FaultError,
    SimulationError,
)
from repro.faults import (
    FabricFaults,
    FaultInjector,
    FaultPlan,
    LinkDown,
    fabric_death,
    lossy_plan,
)
from repro.mpi.devices.ch_mad.switchpoints import SWITCH_POINTS
from repro.sim import CPU, Engine, Mailbox, MailboxSelect, wait
from repro.sim.engine import install_instrumentation
from repro.units import us


# -- plans ---------------------------------------------------------------


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(FaultError):
            FabricFaults(drop_rate=1.5)
        with pytest.raises(FaultError):
            FabricFaults(corrupt_rate=-0.1)
        with pytest.raises(FaultError):
            FabricFaults(latency_spike_rate=0.5)  # no spike duration

    def test_link_down_validation(self):
        with pytest.raises(FaultError):
            LinkDown(at=-1)
        with pytest.raises(FaultError):
            LinkDown(at=0, duration=0)

    def test_link_down_coverage(self):
        down = LinkDown(at=100, duration=50, adapters=(1,))
        assert down.covers(120, 1)
        assert not down.covers(120, 0)      # other adapter
        assert not down.covers(99, 1)       # before the window
        assert not down.covers(150, 1)      # after the window
        assert LinkDown(at=100).covers(10**12, 5)  # permanent, all adapters

    def test_spec_for_falls_back_to_base_protocol(self):
        plan = lossy_plan(0.1, fabrics=("bip",))
        assert plan.spec_for("bip#1").drop_rate == 0.1
        assert plan.spec_for("tcp") is None
        exact = FaultPlan(fabrics={"bip#1": FabricFaults(drop_rate=0.5),
                                   "bip": FabricFaults(drop_rate=0.1)})
        assert exact.spec_for("bip#1").drop_rate == 0.5


class TestFaultInjector:
    def test_scheduled_drops_by_message_index(self):
        engine = Engine()
        plan = FaultPlan(fabrics={"tcp": FabricFaults(drop_messages=(1, 3))})
        injector = FaultInjector(engine, plan)
        verdicts = [injector.decide("tcp", 0, 1, 100).dropped
                    for _ in range(5)]
        assert verdicts == [False, True, False, True, False]

    def test_uncovered_fabric_passes_everything(self):
        injector = FaultInjector(Engine(), lossy_plan(1.0, fabrics=("tcp",)))
        decision = injector.decide("sisci", 0, 1, 100)
        assert not decision.dropped and not decision.corrupted

    def test_link_down_window_blackholes(self):
        engine = Engine()
        plan = FaultPlan(fabrics={
            "tcp": FabricFaults(downs=(LinkDown(at=1000, duration=500),)),
        })
        injector = FaultInjector(engine, plan)
        assert not injector.decide("tcp", 0, 1, 10).dropped
        engine.schedule(1200, lambda: None)
        engine.run()
        decision = injector.decide("tcp", 0, 1, 10)
        assert decision.dropped and decision.reason == "link_down"

    def test_permanent_death(self):
        engine = Engine()
        plan = FaultPlan(fabrics={"sisci": fabric_death(us(10))})
        injector = FaultInjector(engine, plan)
        assert not injector.fabric_dead("sisci")
        engine.schedule(us(10), lambda: None)
        engine.run()
        assert injector.fabric_dead("sisci")
        assert injector.decide("sisci", 0, 1, 10).reason == "link_dead"

    def test_decisions_replay_identically(self):
        def roll(seed):
            injector = FaultInjector(
                Engine(),
                FaultPlan(fabrics={"tcp": FabricFaults(
                    drop_rate=0.3, corrupt_rate=0.2,
                    latency_spike_rate=0.1, latency_spike_ns=100)},
                    seed=seed),
            )
            return [(injector.decide("tcp", 0, 1, 64).verdict,
                     injector.decide("tcp", 0, 1, 64).extra_latency)
                    for _ in range(200)]

        assert roll(7) == roll(7)
        assert roll(7) != roll(8)


# -- MailboxSelect -------------------------------------------------------


class TestMailboxSelect:
    def _run(self, body, setup=None):
        engine = Engine()
        cpu = CPU(engine, switch_cost=0)
        out = []
        cpu.spawn(body(out))
        if setup is not None:
            setup(engine)
        engine.run()
        return out

    def test_prefilled_mailbox_wins_immediately(self):
        a, b = Mailbox("a"), Mailbox("b")
        b.post("hello")

        def body(out):
            mailbox, item = yield wait(MailboxSelect([a, b]))
            out.append((mailbox.name, item))

        assert self._run(body) == [("b", "hello")]

    def test_first_post_anywhere_wakes(self):
        a, b = Mailbox("a"), Mailbox("b")

        def body(out):
            mailbox, item = yield wait(MailboxSelect([a, b]))
            out.append((mailbox.name, item))

        def setup(engine):
            engine.schedule(10, lambda: b.post(1))
            engine.schedule(20, lambda: a.post(2))

        assert self._run(body, setup) == [("b", 1)]
        assert len(a) == 1  # the other post stayed queued

    def test_stale_entries_are_skipped(self):
        """After a select fires, its registrations in the *other* mailboxes
        must not swallow later posts."""
        a, b = Mailbox("a"), Mailbox("b")

        def body(out):
            mailbox, item = yield wait(MailboxSelect([a, b]))
            out.append(item)
            mailbox, item = yield wait(MailboxSelect([a, b]))
            out.append(item)

        def setup(engine):
            engine.schedule(10, lambda: a.post("x"))
            engine.schedule(20, lambda: b.post("y"))

        assert self._run(body, setup) == ["x", "y"]

    def test_single_shot(self):
        a = Mailbox("a")
        a.post(1)
        a.post(2)
        select = MailboxSelect([a])

        def body(out):
            out.append((yield wait(select))[1])
            out.append((yield wait(select))[1])

        with pytest.raises(SimulationError):
            self._run(body)

    def test_needs_a_mailbox(self):
        with pytest.raises(SimulationError):
            MailboxSelect([])


# -- reliable transport through the full MPI stack -----------------------


def _two_node_config(networks=("tcp", "sisci"), fault_plan=None,
                     reliable=False):
    nodes = [NodeSpec(f"n{i}", networks=tuple(networks)) for i in range(2)]
    return ClusterConfig(nodes=nodes, fault_plan=fault_plan,
                         reliable=reliable)


def _stream_program(count=20, size=9000, tag=7):
    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            for i in range(count):
                yield from comm.send(("msg", i), dest=1, tag=tag, size=size)
            return None
        out = []
        for _ in range(count):
            data, _status = yield from comm.recv(source=0, tag=tag)
            out.append(data)
        return out
    return program


class TestReliableTransport:
    def test_plan_forces_reliability(self):
        world = MPIWorld(_two_node_config(fault_plan=lossy_plan(0.01)))
        assert world.session.reliable
        assert world.session.processes[0].transport is not None

    def test_reliable_without_faults_never_retransmits(self):
        world = MPIWorld(_two_node_config(reliable=True))
        ins = install_instrumentation(world.engine)
        results = world.run(_stream_program())
        assert results[1] == [("msg", i) for i in range(20)]
        assert ins.metrics.total("transport.retransmits") == 0
        assert ins.metrics.total("transport.acks") > 0

    def test_lossy_run_completes_with_correct_results(self):
        world = MPIWorld(_two_node_config(fault_plan=lossy_plan(0.05, seed=3)))
        ins = install_instrumentation(world.engine)
        results = world.run(_stream_program())
        assert results[1] == [("msg", i) for i in range(20)]
        assert ins.metrics.total("faults.dropped") > 0
        assert ins.metrics.total("transport.retransmits") > 0
        assert ins.metrics.total("failover.channels") == 0

    def test_corruption_is_handled_as_loss(self):
        plan = FaultPlan(fabrics={"sisci": FabricFaults(corrupt_rate=0.1),
                                  "tcp": FabricFaults(corrupt_rate=0.1)},
                         seed=5)
        world = MPIWorld(_two_node_config(fault_plan=plan))
        ins = install_instrumentation(world.engine)
        results = world.run(_stream_program())
        assert results[1] == [("msg", i) for i in range(20)]
        assert ins.metrics.total("faults.corrupted") > 0
        assert ins.metrics.total("transport.corrupt_drops") > 0

    def test_latency_spikes_only_delay(self):
        plan = FaultPlan(fabrics={"sisci": FabricFaults(
            latency_spike_rate=0.3, latency_spike_ns=us(50))}, seed=2)
        baseline = MPIWorld(_two_node_config(networks=("sisci",),
                                             reliable=True))
        spiky = MPIWorld(_two_node_config(networks=("sisci",),
                                          fault_plan=plan))
        ins = install_instrumentation(spiky.engine)
        program = _stream_program(count=10, size=500)
        assert baseline.run(program) == spiky.run(program)
        assert ins.metrics.total("faults.delayed") > 0
        assert ins.metrics.total("transport.retransmits") == 0
        assert spiky.engine.now > baseline.engine.now

    def test_rendezvous_survives_loss(self):
        """Large (rendezvous-mode) messages retransmit too: the REQUEST /
        SENDOK / RNDV packets all ride reliable connections."""
        plan = lossy_plan(0.08, seed=9)
        world = MPIWorld(_two_node_config(fault_plan=plan))
        results = world.run(_stream_program(count=6, size=100_000))
        assert results[1] == [("msg", i) for i in range(6)]


class TestChannelFailover:
    def test_fabric_death_fails_over_with_identical_results(self):
        """The tentpole acceptance scenario: SCI dies mid-run, the job
        completes over TCP with byte-identical MPI-level results."""
        program = _stream_program(count=20, size=9000)
        clean = MPIWorld(_two_node_config())
        clean_results = clean.run(program)

        plan = FaultPlan(fabrics={"sisci": fabric_death(us(200))}, seed=1)
        faulty = MPIWorld(_two_node_config(fault_plan=plan))
        ins = install_instrumentation(faulty.engine)
        faulty_results = faulty.run(program)

        assert faulty_results == clean_results
        assert ins.metrics.total("transport.retransmits") > 0
        assert ins.metrics.total("failover.channels") == 1

    def test_threshold_reelected_after_death(self):
        plan = FaultPlan(fabrics={"sisci": fabric_death(us(200))}, seed=1)
        world = MPIWorld(_two_node_config(fault_plan=plan))
        devices = [env.inter_device for env in world.envs]
        assert all(d.eager_threshold == SWITCH_POINTS["sisci"]
                   for d in devices)
        world.run(_stream_program(count=20, size=9000))
        assert all(d.eager_threshold == SWITCH_POINTS["tcp"]
                   for d in devices)
        assert all(d.ports["sisci"].channel.dead for d in devices)

    def test_no_survivor_raises_instead_of_hanging(self):
        plan = FaultPlan(fabrics={"sisci": fabric_death(us(50))})
        world = MPIWorld(_two_node_config(networks=("sisci",),
                                          fault_plan=plan))
        with pytest.raises(FailoverExhaustedError):
            world.run(_stream_program(count=5, size=4000))

    def test_new_sends_avoid_dead_channel(self):
        plan = FaultPlan(fabrics={"sisci": fabric_death(us(200))}, seed=1)
        world = MPIWorld(_two_node_config(fault_plan=plan))

        def program(mpi):
            comm = mpi.comm_world
            peer = 1 - comm.rank
            for i in range(20):
                if comm.rank == 0:
                    yield from comm.send(i, dest=1, tag=0, size=9000)
                else:
                    yield from comm.recv(source=0, tag=0)
            return mpi.inter_device.select_port(peer).channel.protocol

        assert world.run(program) == ["tcp", "tcp"]

    def test_fault_plan_requires_ch_mad(self):
        nodes = [NodeSpec(f"n{i}", networks=("tcp",)) for i in range(2)]
        with pytest.raises(ConfigurationError):
            ClusterConfig(nodes=nodes, device="ch_p4",
                          fault_plan=lossy_plan(0.01))
        with pytest.raises(ConfigurationError):
            ClusterConfig(nodes=nodes, device="ch_p4", reliable=True)


class TestDeadlockDiagnostics:
    def test_deadlock_error_reports_waitables(self):
        from repro.errors import DeadlockError

        world = MPIWorld(_two_node_config(networks=("sisci",)))

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 1:
                yield from comm.recv(source=0, tag=0)  # never sent
            return None

        with pytest.raises(DeadlockError) as excinfo:
            world.run(program)
        err = excinfo.value
        assert len(err.blocked) == 1 and "rank1.main" in err.blocked[0]
        (name, description), = err.waiting.items()
        assert "rank1.main" in name
        # The description names the waitable the rank hangs on, and the
        # enriched message carries it too.
        assert description and description in str(err)
