"""Tests for request-group operations (waitany/waitsome/testall/testany)."""

from repro.mpi.constants import UNDEFINED
from repro.mpi.request import Request
from tests.helpers import run_ranks


class TestWaitany:
    def test_returns_first_arrival(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in (1, 2)]
                index, (data, _status) = yield from Request.waitany(reqs)
                other = yield from reqs[1 - index].wait()
                return (index, data, other[0])
            yield sleep(us(100))
            yield from comm.send("second-tag", dest=0, tag=2)
            yield sleep(us(300))
            yield from comm.send("first-tag", dest=0, tag=1)
            return None

        index, data, other = run_ranks(program)[0]
        assert index == 1 and data == "second-tag" and other == "first-tag"

    def test_immediate_when_already_complete(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(1, dest=1, tag=5)
                return None
            yield sleep(us(500))  # the message is already buffered
            req = comm.irecv(source=0, tag=5)
            index, (data, _) = yield from Request.waitany([req])
            return (index, data)

        assert run_ranks(program)[1] == (0, 1)

    def test_lowest_index_wins_ties(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in (1, 2)]
                yield sleep(us(1500))  # both arrive before we look
                index, _ = yield from Request.waitany(reqs)
                for i, req in enumerate(reqs):
                    if i != index:
                        yield from req.wait()
                return index
            yield from comm.send("a", dest=0, tag=1)
            yield from comm.send("b", dest=0, tag=2)
            return None

        assert run_ranks(program)[0] == 0


class TestWaitsome:
    def test_collects_simultaneous_completions(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in range(3)]
                yield sleep(us(2000))  # let all three arrive
                completed = yield from Request.waitsome(reqs)
                return sorted(i for i, _ in completed)
            for t in range(3):
                yield from comm.send(t, dest=0, tag=t)
            return None

        assert run_ranks(program)[0] == [0, 1, 2]

    def test_returns_only_ready_subset(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in (1, 2)]
                completed = yield from Request.waitsome(reqs)
                # Only tag 1 has arrived so far.
                indices = [i for i, _ in completed]
                yield from reqs[1].wait()
                return indices
            yield from comm.send("early", dest=0, tag=1)
            yield sleep(us(5000))
            yield from comm.send("late", dest=0, tag=2)
            return None

        assert run_ranks(program)[0] == [0]


class TestTestallTestany:
    def test_testall_partial_then_complete(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in (1, 2)]
                flag_before, _ = Request.testall(reqs)
                while True:
                    flag, results = Request.testall(reqs)
                    if flag:
                        break
                    yield sleep(us(50))
                return (flag_before, [r[0] for r in results])
            yield from comm.send("a", dest=0, tag=1)
            yield from comm.send("b", dest=0, tag=2)
            return None

        flag_before, results = run_ranks(program)[0]
        assert flag_before is False
        assert results == ["a", "b"]

    def test_testany_transitions(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=1)
                before = Request.testany([req])
                assert before == (False, UNDEFINED, None)
                while True:
                    flag, index, result = Request.testany([req])
                    if flag:
                        break
                    yield sleep(us(50))
                return (index, result[0])
            yield from comm.send(42, dest=0, tag=1)
            return None

        assert run_ranks(program)[0] == (0, 42)
