"""Scale/stress tests: larger worlds, heavy collectives, meta-clusters."""

import hashlib
import tracemalloc

import numpy as np
import pytest

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec, cluster_of_clusters
from repro.cluster.config import multirail_smp_cluster
from repro.mpi.reduce_ops import SUM
from tests.helpers import linear_cluster, run_world


class TestLargeWorlds:
    def test_alltoall_32_ranks(self):
        def program(mpi):
            comm = mpi.comm_world
            outgoing = [comm.rank * 1000 + dest for dest in range(comm.size)]
            incoming = yield from comm.alltoall(outgoing)
            return incoming

        results = run_world(program, linear_cluster(32))
        for me, got in enumerate(results):
            assert got == [src * 1000 + me for src in range(32)]

    def test_allreduce_tree_32_ranks(self):
        def program(mpi):
            comm = mpi.comm_world
            total = yield from comm.allreduce(comm.rank, op=SUM)
            return total

        expected = sum(range(32))
        assert run_world(program, linear_cluster(32)) == [expected] * 32

    def test_barrier_storm(self):
        def program(mpi):
            comm = mpi.comm_world
            for _ in range(20):
                yield from comm.barrier()
            return True

        assert all(run_world(program, linear_cluster(16)))

    def test_many_outstanding_requests(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i % 8) for i in range(64)]
                for req in reqs:
                    yield from req.wait()
                return None
            got = []
            reqs = [comm.irecv(source=0, tag=t) for t in range(8)
                    for _ in range(8)]
            from repro.mpi.request import Request
            results = yield from Request.waitall(reqs)
            return sorted(r[0] for r in results)

        results = run_world(program, linear_cluster(2))
        assert results[1] == list(range(64))


def _exchange_and_allreduce(mpi):
    """Sparse ring neighbour exchange, then one hierarchical allreduce."""
    comm = mpi.comm_world
    rank, size = comm.rank, comm.size
    right, left = (rank + 1) % size, (rank - 1) % size
    if rank % 2 == 0:
        yield from comm.send(rank, dest=right, tag=7)
        from_left = yield from comm.recv(source=left, tag=7)
    else:
        from_left = yield from comm.recv(source=left, tag=7)
        yield from comm.send(rank, dest=right, tag=7)
    total = yield from comm.allreduce(rank, op=SUM, algorithm="hier")
    return (from_left[0], total)


def _run_512(budget_assert: bool):
    """Build + run a 512-rank world; returns a result digest."""
    config = multirail_smp_cluster(nodes=128, processes_per_node=4,
                                   rails=1, network="sisci")
    tracemalloc.start()
    world = MPIWorld(config)
    results = world.run(_exchange_and_allreduce)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    if budget_assert:
        # ~13 KiB/rank construction + run-time state today (~12 MiB
        # total); the budget has ~3x slack so only a *superlinear*
        # regression (the O(ranks^2) tables this PR removed) trips it.
        assert peak < 40 * 1024 * 1024, (
            f"512-rank world peaked at {peak / 2**20:.1f} MiB traced "
            f"memory (budget 40 MiB)")
    expected_total = sum(range(512))
    for rank, (from_left, total) in enumerate(results):
        assert from_left == (rank - 1) % 512
        assert total == expected_total
    digest = hashlib.sha256()
    digest.update(repr(results).encode())
    digest.update(str(world.engine.now).encode())
    return digest.hexdigest()


class TestThousandRankScale:
    """The PR-8 scaling guard: big worlds must stay cheap *and* exact."""

    def test_512_rank_world_memory_and_determinism(self):
        first = _run_512(budget_assert=True)
        second = _run_512(budget_assert=False)
        assert first == second, (
            "512-rank run is not bit-identical across two builds")


class TestMetaClusterScale:
    def test_collectives_on_large_meta_cluster(self):
        config = cluster_of_clusters(sci_nodes=4, myrinet_nodes=4)
        world = MPIWorld(config)

        def program(mpi):
            comm = mpi.comm_world
            send = np.full(16, float(comm.rank))
            recv = np.zeros(16)
            yield from comm.Allreduce(send, recv, op=SUM)
            gathered = yield from comm.gather(comm.rank, root=0)
            yield from comm.barrier()
            return (float(recv[0]), gathered)

        results = world.run(program)
        expected = float(sum(range(8)))
        assert all(r[0] == expected for r in results)
        assert results[0][1] == list(range(8))
        # Cross-island collective legs used TCP; intra-island used fast nets.
        tcp = world.session.fabrics["tcp"]
        assert sum(a.messages_received for a in tcp.adapters) > 0

    def test_forwarded_meta_cluster_collectives(self):
        """Gateways only — no common network anywhere."""
        nodes = (
            [NodeSpec(f"sci{i}", networks=("sisci",)) for i in range(3)]
            + [NodeSpec("gw", networks=("sisci", "bip"))]
            + [NodeSpec(f"myri{i}", networks=("bip",)) for i in range(3)]
        )
        config = ClusterConfig(nodes=nodes, device="ch_mad", forwarding=True)
        world = MPIWorld(config)

        def program(mpi):
            comm = mpi.comm_world
            total = yield from comm.allreduce(comm.rank + 1, op=SUM)
            return total

        expected = sum(range(1, 8))
        assert world.run(program) == [expected] * 7
        relayed = world.envs[3].inter_device.packets_relayed
        assert relayed > 0, "the gateway must have relayed traffic"

    def test_big_payload_collective(self):
        def program(mpi):
            comm = mpi.comm_world
            chunk = np.full(65536, float(comm.rank))  # 512 KB each
            gathered = yield from comm.gather(chunk, root=0)
            if comm.rank == 0:
                return [float(g[0]) for g in gathered]
            return None

        results = run_world(program, linear_cluster(4, networks=("bip",)))
        assert results[0] == [0.0, 1.0, 2.0, 3.0]
