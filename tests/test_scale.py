"""Scale/stress tests: larger worlds, heavy collectives, meta-clusters."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec, cluster_of_clusters
from repro.mpi.reduce_ops import SUM
from tests.helpers import linear_cluster, run_world


class TestLargeWorlds:
    def test_alltoall_32_ranks(self):
        def program(mpi):
            comm = mpi.comm_world
            outgoing = [comm.rank * 1000 + dest for dest in range(comm.size)]
            incoming = yield from comm.alltoall(outgoing)
            return incoming

        results = run_world(program, linear_cluster(32))
        for me, got in enumerate(results):
            assert got == [src * 1000 + me for src in range(32)]

    def test_allreduce_tree_32_ranks(self):
        def program(mpi):
            comm = mpi.comm_world
            total = yield from comm.allreduce(comm.rank, op=SUM)
            return total

        expected = sum(range(32))
        assert run_world(program, linear_cluster(32)) == [expected] * 32

    def test_barrier_storm(self):
        def program(mpi):
            comm = mpi.comm_world
            for _ in range(20):
                yield from comm.barrier()
            return True

        assert all(run_world(program, linear_cluster(16)))

    def test_many_outstanding_requests(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i % 8) for i in range(64)]
                for req in reqs:
                    yield from req.wait()
                return None
            got = []
            reqs = [comm.irecv(source=0, tag=t) for t in range(8)
                    for _ in range(8)]
            from repro.mpi.request import Request
            results = yield from Request.waitall(reqs)
            return sorted(r[0] for r in results)

        results = run_world(program, linear_cluster(2))
        assert results[1] == list(range(64))


class TestMetaClusterScale:
    def test_collectives_on_large_meta_cluster(self):
        config = cluster_of_clusters(sci_nodes=4, myrinet_nodes=4)
        world = MPIWorld(config)

        def program(mpi):
            comm = mpi.comm_world
            send = np.full(16, float(comm.rank))
            recv = np.zeros(16)
            yield from comm.Allreduce(send, recv, op=SUM)
            gathered = yield from comm.gather(comm.rank, root=0)
            yield from comm.barrier()
            return (float(recv[0]), gathered)

        results = world.run(program)
        expected = float(sum(range(8)))
        assert all(r[0] == expected for r in results)
        assert results[0][1] == list(range(8))
        # Cross-island collective legs used TCP; intra-island used fast nets.
        tcp = world.session.fabrics["tcp"]
        assert sum(a.messages_received for a in tcp.adapters) > 0

    def test_forwarded_meta_cluster_collectives(self):
        """Gateways only — no common network anywhere."""
        nodes = (
            [NodeSpec(f"sci{i}", networks=("sisci",)) for i in range(3)]
            + [NodeSpec("gw", networks=("sisci", "bip"))]
            + [NodeSpec(f"myri{i}", networks=("bip",)) for i in range(3)]
        )
        config = ClusterConfig(nodes=nodes, device="ch_mad", forwarding=True)
        world = MPIWorld(config)

        def program(mpi):
            comm = mpi.comm_world
            total = yield from comm.allreduce(comm.rank + 1, op=SUM)
            return total

        expected = sum(range(1, 8))
        assert world.run(program) == [expected] * 7
        relayed = world.envs[3].inter_device.packets_relayed
        assert relayed > 0, "the gateway must have relayed traffic"

    def test_big_payload_collective(self):
        def program(mpi):
            comm = mpi.comm_world
            chunk = np.full(65536, float(comm.rank))  # 512 KB each
            gathered = yield from comm.gather(chunk, root=0)
            if comm.rank == 0:
                return [float(g[0]) for g in gathered]
            return None

        results = run_world(program, linear_cluster(4, networks=("bip",)))
        assert results[0] == [0.0, 1.0, 2.0, 3.0]
