"""Soak test: rank-death storms across many seeds and clusters.

The ``rank_death`` fuzz workload (a seed-chosen victim dying mid-job,
survivors revoking + shrinking + finishing) sweeps across fuzz seeds
and workload seeds; a *storm* variant kills two ranks of a six-rank SMP
cluster at staggered times and requires the survivors to recover twice
— the second failure hits the communicator the first shrink built.

Every run must end with zero hangs, zero checker violations, and
schedule-independent survivor results.  The full sweep is slow, so it
only runs when ``REPRO_SOAK=1`` is set (CI runs it as a dedicated job);
one single-seed smoke case always runs so tier-1 keeps the path covered.
"""

import os

import pytest

from repro.check.fuzz import run_sweep
from repro.cluster import ClusterConfig, EngineConfig, MPIWorld, NodeSpec
from repro.errors import MPIProcFailedError, MPIRevokedError
from repro.faults import FaultPlan
from repro.faults.plan import NodeDeath
from repro.units import us

SOAK = os.environ.get("REPRO_SOAK") == "1"

SOAK_FUZZ_SEEDS = tuple(range(12))
SOAK_WORKLOAD_SEEDS = tuple(range(4))


# -- the fuzz-workload sweep ---------------------------------------------


def test_rank_death_workload_smoke():
    """Single-seed tier-1 coverage of the rank_death fuzz workload."""
    failures = run_sweep(["rank_death"], [0], out=lambda line: None)
    assert failures == []


@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the soak sweep")
@pytest.mark.parametrize("workload_seed", SOAK_WORKLOAD_SEEDS)
def test_rank_death_workload_sweep(workload_seed):
    failures = run_sweep(["rank_death"], SOAK_FUZZ_SEEDS,
                         workload_seed=workload_seed,
                         out=lambda line: None)
    assert failures == [], "\n".join(
        f"{f.kind}: {f.detail}\nREPRO: {f.repro}" for f in failures)


# -- the storm: two staggered deaths, recover twice ----------------------


def _storm_program(mpi):
    comm = mpi.comm_world
    recoveries = []
    for _round in range(3):  # initial comm + up to two rebuilds
        try:
            for _ in range(300):
                yield from comm.allreduce(comm.rank + 1)
            break  # a full quiet stretch: no more failures coming
        except (MPIProcFailedError, MPIRevokedError):
            comm.revoke()
            comm = yield from comm.shrink()
            total = yield from comm.allreduce(comm.rank + 1)
            agreed = yield from comm.agree(1)
            recoveries.append((comm.rank, comm.size, total, agreed))
    return tuple(recoveries)


def _run_storm(seed):
    plan = FaultPlan(seed=seed, deaths=(
        NodeDeath(rank=1, at=us(250)),
        NodeDeath(rank=4, at=us(40_000)),
    ))
    config = ClusterConfig(
        nodes=[NodeSpec(f"smp{i}", networks=("tcp", "sisci"), processes=2)
               for i in range(3)],
        fault_plan=plan,
    )
    world = MPIWorld(config, engine_config=EngineConfig(
        seed=seed, checker=True))
    return world, world.run(_storm_program)


@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the storm")
@pytest.mark.parametrize("seed", range(1, 6))
def test_double_death_storm(seed):
    world, results = _run_storm(seed)
    assert results[1] is None and results[4] is None
    survivors = [r for r in results if r is not None]
    assert len(survivors) == 4
    for recoveries in survivors:
        assert len(recoveries) == 2, "a survivor missed a recovery round"
        first, second = recoveries
        assert first[1] == 5 and second[1] == 4  # 6 -> 5 -> 4 ranks
        assert second[3] == 1                    # final agreement
    assert sorted(r[1][0] for r in survivors) == [0, 1, 2, 3]
    assert list(world.engine.checker.violations) == []


def test_double_death_storm_smoke():
    """One storm seed always runs: double-failure recovery is tier-1."""
    world, results = _run_storm(seed=3)
    survivors = [r for r in results if r is not None]
    assert len(survivors) == 4
    assert all(len(r) == 2 and r[1][1] == 4 for r in survivors)
    assert list(world.engine.checker.violations) == []
