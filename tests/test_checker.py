"""The online semantics checker (repro.check): plants and positives.

Every negative test plants one *real* protocol bug — a forged packet, a
send from a polling thread, a receive cycle, a leaked request — and
asserts the checker reports the right invariant, rank and connection.
The positive tests pin the opposite: correct runs are violation-free and
the disabled checker is the inert null object.
"""

from types import SimpleNamespace

import pytest

from repro.check import NULL_CHECKER, CheckViolation
from repro.cluster import ClusterConfig, MPIWorld, NodeSpec
from repro.errors import DeadlockError
from repro.madeleine import MadeleineSession
from repro.madeleine.constants import (
    RECEIVE_CHEAPER,
    RECEIVE_EXPRESS,
    SEND_CHEAPER,
)
from repro.madeleine.message import MadWireMessage, PackedBlock
from repro.madeleine.reliable import MadAck
from repro.marcel import PollingThread
from repro.mpi.adi.packets import Envelope
from repro.mpi.devices.ch_mad.device import ChMadRndvToken
from repro.mpi.devices.ch_mad.packets import ChMadHeader, MadPktType
from repro.sim import Engine
from repro.sim.engine import install_checker
from tests.helpers import linear_cluster


def fresh_checker(raise_on_violation=False):
    return install_checker(Engine(),
                           raise_on_violation=raise_on_violation)


# ---------------------------------------------------------------------------
# positives: clean runs stay clean, the null checker stays inert
# ---------------------------------------------------------------------------

def test_default_checker_is_the_null_object():
    engine = Engine()
    assert engine.checker is NULL_CHECKER
    assert not engine.checker.enabled
    assert engine.checker.violations == ()
    # Any hook call on the disabled checker is a harmless no-op.
    assert engine.checker.on_send(object(), 0) is None
    assert engine.checker.anything_at_all() is None


def test_clean_run_has_no_violations():
    world = MPIWorld(linear_cluster(2, networks=("sisci",)))
    checker = install_checker(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        peer = 1 - comm.rank
        if comm.rank == 0:
            yield from comm.send((1, 2), dest=peer, tag=4, size=64)
            # A rendezvous-sized message walks the full §4.2.2 handshake.
            yield from comm.send(b"big", dest=peer, tag=4, size=60_000)
            data, _ = yield from comm.recv(source=peer, tag=5)
            return data
        a, _ = yield from comm.recv(source=peer, tag=4)
        b, _ = yield from comm.recv(source=peer, tag=4)
        yield from comm.send("done", dest=peer, tag=5, size=16)
        return (a, b)

    results = world.run(program)
    assert results[1] == ((1, 2), b"big")
    assert checker.violations == []
    assert checker.packets_seen["MAD_REQUEST_PKT"] == 1
    assert checker.packets_seen["MAD_SENDOK_PKT"] == 1
    assert checker.packets_seen["MAD_RNDV_PKT"] == 1


# ---------------------------------------------------------------------------
# plant: rendezvous handshake misordering
# ---------------------------------------------------------------------------

def test_forged_sendok_names_rank_and_connection():
    world = MPIWorld(linear_cluster(2, networks=("sisci",)))
    install_checker(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 1:
            # A SENDOK for a send_id no REQUEST ever announced: the §4.2.2
            # handshake ran backwards.
            device = mpi.inter_device
            token = ChMadRndvToken(device, requester_world=0,
                                   send_id=999_999)
            yield from device.send_rndv_ack(token, sync_id=7)
        else:
            yield from comm.recv(source=1, tag=0)

    with pytest.raises(CheckViolation) as excinfo:
        world.run(program)
    violation = excinfo.value
    assert violation.invariant == "rendezvous-handshake"
    assert violation.rank == 1
    assert violation.connection == "1->0"
    assert "999999" in violation.details


def test_sendok_before_request_arrives_is_flagged():
    checker = fresh_checker()
    envelope = Envelope(context_id=0, source=0, tag=1, size=50_000)
    checker.on_chmad_send(
        0, 1, ChMadHeader(MadPktType.MAD_REQUEST_PKT, envelope=envelope,
                          send_id=3))
    # The receiver acknowledges before its dispatcher saw the request —
    # exactly the reordering a broken transport would produce.
    checker.on_chmad_send(
        1, 0, ChMadHeader(MadPktType.MAD_SENDOK_PKT, send_id=3, sync_id=9))
    assert [v.invariant for v in checker.violations] == [
        "rendezvous-handshake"]
    assert checker.violations[0].rank == 1
    assert "'requested'" in checker.violations[0].details


# ---------------------------------------------------------------------------
# plant: a polling thread that sends (§4.2.3)
# ---------------------------------------------------------------------------

def test_send_inside_polling_handler_is_flagged():
    session = MadeleineSession()
    session.add_fabric("sisci")
    p0 = session.add_process(networks=("sisci",))
    p1 = session.add_process(networks=("sisci",))
    channel = session.new_channel("main", "sisci")
    install_checker(session.engine)
    port1 = p1.port(channel)

    def bad_handler(delivery):
        # Echo straight from the polling thread — the paper's forbidden
        # move ("a polling thread must not proceed to any send").
        message = port1.begin_packing(0)
        yield from message.pack(b"echo", 4, SEND_CHEAPER, RECEIVE_CHEAPER)
        yield from message.end_packing()

    PollingThread(p1.runtime, port1.poll_source(), bad_handler)

    def sender():
        message = p0.port(channel).begin_packing(1)
        yield from message.pack(b"ping", 4, SEND_CHEAPER, RECEIVE_CHEAPER)
        yield from message.end_packing()

    p0.runtime.spawn(sender, name="sender")
    with pytest.raises(CheckViolation) as excinfo:
        session.run()
    violation = excinfo.value
    assert violation.invariant == "polling-send"
    assert violation.rank == 1
    assert "main:1->0" in violation.connection


# ---------------------------------------------------------------------------
# plant: an artificial receive cycle, diagnosed rank by rank
# ---------------------------------------------------------------------------

def test_recv_cycle_is_diagnosed_rank_by_rank():
    world = MPIWorld(linear_cluster(2, networks=("sisci",)))

    def program(mpi):
        comm = mpi.comm_world
        yield from comm.recv(source=1 - comm.rank, tag=0)

    with pytest.raises(DeadlockError) as excinfo:
        world.run(program)
    error = excinfo.value
    assert error.cycle == [0, 1]
    text = str(error)
    assert "wait-for cycle: rank 0 -> rank 1 -> rank 0" in text
    assert "rank 0 waits on rank 1: recv source=1" in text
    assert "rank 1 waits on rank 0: recv source=0" in text


def test_three_rank_relay_cycle_is_found():
    world = MPIWorld(linear_cluster(3, networks=("sisci",)))

    def program(mpi):
        comm = mpi.comm_world
        yield from comm.recv(source=(comm.rank + 1) % 3, tag=0)

    with pytest.raises(DeadlockError) as excinfo:
        world.run(program)
    assert excinfo.value.cycle == [0, 1, 2]


# ---------------------------------------------------------------------------
# plant: leaked requests at MPI_Finalize
# ---------------------------------------------------------------------------

def test_leaked_irecv_reported_at_finalize():
    world = MPIWorld(linear_cluster(2, networks=("sisci",)))
    install_checker(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        yield from comm.barrier()
        if comm.rank == 0:
            comm.irecv(source=1, tag=3)  # never matched, never waited

    with pytest.raises(CheckViolation) as excinfo:
        world.run(program)
    violation = excinfo.value
    assert violation.invariant == "finalize-leak"
    assert violation.rank == 0
    assert "still posted" in violation.details


def test_unreceived_message_reported_at_finalize():
    world = MPIWorld(linear_cluster(2, networks=("sisci",)))
    install_checker(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(b"orphan", dest=1, tag=3, size=32)
        yield from comm.barrier()

    with pytest.raises(CheckViolation) as excinfo:
        world.run(program)
    violation = excinfo.value
    assert violation.invariant == "finalize-leak"
    assert violation.rank == 1
    assert "unexpected" in violation.details


# ---------------------------------------------------------------------------
# plant: forged transport acknowledgement
# ---------------------------------------------------------------------------

def test_forged_ack_outside_send_window():
    config = ClusterConfig(
        nodes=[NodeSpec(f"n{i}", networks=("sisci",)) for i in range(2)],
        reliable=True)
    world = MPIWorld(config)
    install_checker(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(b"x", dest=1, tag=0, size=64)
            device = mpi.inter_device
            port = next(iter(device.ports.values()))
            mpi.process.transport.handle_ack(
                port, MadAck(channel_id=port.channel.id, source_rank=1,
                             dest_rank=0, ack_seq=40))
        else:
            yield from comm.recv(source=0, tag=0)

    with pytest.raises(CheckViolation) as excinfo:
        world.run(program)
    violation = excinfo.value
    assert violation.invariant == "reliable-window"
    assert violation.rank == 0
    assert "40" in violation.details


# ---------------------------------------------------------------------------
# unit plants against the checker's own state machines
# ---------------------------------------------------------------------------

def test_overtaking_match_is_flagged():
    checker = fresh_checker()
    first = Envelope(context_id=0, source=0, tag=5, size=8)
    second = Envelope(context_id=0, source=0, tag=5, size=8)
    checker.on_send(first, dest_world=1)
    checker.on_send(second, dest_world=1)
    checker.on_match(second, rank=1)  # message #1 overtook message #0
    assert [v.invariant for v in checker.violations] == ["non-overtaking"]
    violation = checker.violations[0]
    assert violation.rank == 1
    assert violation.connection == "0->1/tag5"
    assert "message #1" in violation.details


def test_in_order_matches_are_clean():
    checker = fresh_checker()
    envelopes = [Envelope(context_id=0, source=0, tag=5, size=8)
                 for _ in range(3)]
    for envelope in envelopes:
        checker.on_send(envelope, dest_world=1)
    for envelope in envelopes:
        checker.on_match(envelope, rank=1)
    assert checker.violations == []


def test_duplicate_wire_delivery_is_flagged():
    checker = fresh_checker()
    port = SimpleNamespace(channel=SimpleNamespace(id=1, name="main"),
                           rank=0)
    checker.on_wire_deliver(port, src=1, seq=0)
    checker.on_wire_deliver(port, src=1, seq=1)
    checker.on_wire_deliver(port, src=1, seq=1)  # past the dedup: a bug
    assert [v.invariant for v in checker.violations] == ["reliable-window"]
    assert "duplicate delivery" in checker.violations[0].details


def test_sequence_gap_is_flagged():
    checker = fresh_checker()
    port = SimpleNamespace(channel=SimpleNamespace(id=1, name="main"),
                           rank=2)
    checker.on_wire_deliver(port, src=0, seq=0)
    checker.on_wire_deliver(port, src=0, seq=3)
    assert "skipped 2" in checker.violations[0].details


def test_cheaper_header_block_is_flagged():
    checker = fresh_checker()
    wire = MadWireMessage(
        channel_id=1, source_rank=0, dest_rank=1, sequence=0,
        blocks=(PackedBlock(b"hdr", 8, SEND_CHEAPER, RECEIVE_CHEAPER),))
    checker.on_chmad_wire(1, "sisci", wire)
    assert [v.invariant for v in checker.violations] == ["express-ordering"]
    assert "receive_EXPRESS" in checker.violations[0].details


def test_express_body_block_is_flagged():
    checker = fresh_checker()
    wire = MadWireMessage(
        channel_id=1, source_rank=0, dest_rank=1, sequence=0,
        blocks=(PackedBlock(b"hdr", 8, SEND_CHEAPER, RECEIVE_EXPRESS),
                PackedBlock(b"body", 64, SEND_CHEAPER, RECEIVE_EXPRESS)))
    checker.on_chmad_wire(1, "sisci", wire)
    assert [v.invariant for v in checker.violations] == ["express-ordering"]
    assert "body block #1" in checker.violations[0].details


def test_violations_accumulate_when_not_raising():
    checker = fresh_checker(raise_on_violation=False)
    port = SimpleNamespace(channel=SimpleNamespace(id=1, name="main"),
                           rank=0)
    checker.on_wire_deliver(port, src=1, seq=0)
    checker.on_wire_deliver(port, src=1, seq=0)
    checker.on_wire_deliver(port, src=1, seq=0)
    assert len(checker.violations) == 2


def test_violation_message_is_actionable():
    checker = fresh_checker()
    port = SimpleNamespace(channel=SimpleNamespace(id=7, name="sci-chan"),
                           rank=3)
    checker.on_wire_deliver(port, src=1, seq=0)
    checker.on_wire_deliver(port, src=1, seq=0)
    text = str(checker.violations[0])
    assert "[reliable-window]" in text
    assert "rank 3" in text
    assert "sci-chan:1->3" in text


# ---------------------------------------------------------------------------
# plants: one-sided (RMA) epoch discipline and registration audit
# ---------------------------------------------------------------------------

def _ib_pair():
    return ClusterConfig(nodes=[NodeSpec("n0", networks=("ib",)),
                                NodeSpec("n1", networks=("ib",))])


def test_rma_access_outside_epoch_is_flagged():
    """A put before the first fence is access outside any exposure epoch."""
    world = MPIWorld(_ib_pair())
    install_checker(world.engine, raise_on_violation=True)

    def program(mpi):
        comm = mpi.comm_world
        win = yield from comm.win_create(64)
        if comm.rank == 0:
            # No fence has opened an epoch yet.
            yield from win.put(1, 0, b"too-early")
        yield from win.fence()
        yield from win.fence()
        yield from win.free()

    with pytest.raises(CheckViolation) as excinfo:
        world.run(program)
    violation = excinfo.value
    assert violation.invariant == "rma-epoch"
    assert violation.rank == 0
    assert violation.connection == "0->1"
    assert "outside any fence epoch" in violation.details


def test_rma_unfenced_completion_is_flagged():
    """Unit plant: a fence that completes with an epoch op unapplied."""
    checker = fresh_checker()
    checker.on_win_create(0, 77)
    checker.on_win_create(1, 77)
    checker.on_win_fence(0, 77)
    checker.on_win_fence(1, 77)
    checker.on_rma_op(0, 77, "put", 1, "77.0.1")
    # Rank 1's fence returns without the put ever being applied — the
    # fence-ordered-completion contract is broken.
    checker.on_win_fence_complete(1, 77)
    assert [v.invariant for v in checker.violations] == [
        "rma-unfenced-completion"]
    violation = checker.violations[0]
    assert violation.rank == 1
    assert violation.connection == "0->1"
    assert "77.0.1" in violation.details


def test_rma_applied_ops_complete_fence_cleanly():
    """The positive twin: applied ops make the same fence violation-free."""
    checker = fresh_checker()
    checker.on_win_create(0, 77)
    checker.on_win_create(1, 77)
    checker.on_win_fence(0, 77)
    checker.on_win_fence(1, 77)
    checker.on_rma_op(0, 77, "put", 1, "77.0.1")
    checker.on_rma_apply(1, 77, "77.0.1")
    checker.on_win_fence_complete(1, 77)
    assert checker.violations == []


def test_registration_leak_reported_at_finalize():
    """Explicitly pinned memory never released fails the finalize audit."""
    world = MPIWorld(_ib_pair())
    install_checker(world.engine, raise_on_violation=True)

    def program(mpi):
        yield from mpi.comm_world.barrier()
        if mpi.rank == 1:
            yield from mpi.process.endpoint("ib").register_explicit(
                ("leak", mpi.rank), 4096)

    with pytest.raises(CheckViolation) as excinfo:
        world.run(program)
    violation = excinfo.value
    assert violation.invariant == "registration-leak"
    assert violation.rank == 1
    assert "4096" in violation.details
    assert "still pinned" in violation.details


def test_deregister_of_unregistered_memory_is_flagged():
    checker = fresh_checker()
    checker.on_mem_deregister(2, ("win", 9))
    assert [v.invariant for v in checker.violations] == ["registration-leak"]
    assert checker.violations[0].rank == 2
    assert "never registered" in checker.violations[0].details
