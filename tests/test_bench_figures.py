"""Smoke tests for the per-figure builders (tiny grids keep them fast)."""

import pytest

from repro.bench import figures


TINY = (4, 1024)


class TestTableBuilders:
    def test_table1_structure(self):
        data = figures.table1_raw_madeleine()
        assert set(data) == {"tcp", "bip", "sisci"}
        for row in data.values():
            assert row["latency_us"] > 0
            assert row["bandwidth_mb_s"] > 0

    def test_table1_checks_pass(self):
        assert all(c.ok for c in figures.table1_checks())


class TestFigureBuilders:
    def test_figure6_small_grid(self):
        figure = figures.figure6_tcp(sizes=TINY)
        assert set(figure.series) == {"ch_mad", "ch_p4", "raw_Madeleine"}
        for series in figure.series.values():
            assert series.sizes == list(TINY)

    def test_figure7_includes_baseline_notes(self):
        figure = figures.figure7_sci(sizes=TINY)
        assert any("ScaMPI" in note for note in figure.notes)
        assert any("SCI-MPICH" in note for note in figure.notes)

    def test_figure8_small_grid(self):
        figure = figures.figure8_myrinet(sizes=TINY)
        assert figure.series["raw_Madeleine"].at(4)[0] < \
            figure.series["ch_mad"].at(4)[0]

    def test_figure9_small_grid(self):
        figure = figures.figure9_multiprotocol(sizes=(4,), reps=3)
        alone = figure.series["SCI_thread_only"]
        both = figure.series["SCI_thread_+_TCP_thread"]
        assert both.at(4)[0] >= alone.at(4)[0]

    def test_render_produces_both_panels(self):
        figure = figures.figure6_tcp(sizes=TINY)
        text = figure.render()
        assert "(a) transfer time" in text
        assert "(b) bandwidth" in text
        assert figure.render(panel="a").count("bandwidth") == 0

    def test_paper_reference_values_present(self):
        assert figures.TABLE1_PAPER["sisci"]["latency_us"] == 4.4
        assert figures.TABLE2_PAPER["tcp"]["lat4_us"] == 148.7
