"""Tests for the metrics/instrumentation subsystem (repro.sim.metrics)."""

import json

import pytest

from repro.cluster import MPIWorld, two_node_cluster
from repro.sim import Engine
from repro.sim.engine import install_instrumentation
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTS,
    format_labels,
)


class TestRegistry:
    def test_counter_create_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("msgs", chan="tcp").inc()
        registry.counter("msgs", chan="tcp").inc(4)
        registry.counter("msgs", chan="sci").inc()
        assert registry.value("msgs", chan="tcp") == 5
        assert registry.value("msgs", chan="sci") == 1
        assert registry.total("msgs") == 6

    def test_untouched_metric_reads_zero(self):
        registry = MetricsRegistry()
        assert registry.value("nothing") == 0
        assert registry.total("nothing") == 0

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_gauge_high_water(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1
        assert gauge.high_water == 3

    def test_histogram_stats(self):
        h = MetricsRegistry().histogram("sizes")
        for v in (1, 2, 3, 4, 100):
            h.observe(v)
        assert h.count == 5
        assert h.total == 110
        assert h.min == 1 and h.max == 100
        assert h.percentile(50) == 3
        assert h.percentile(100) == 100
        empty = Histogram("empty")
        assert empty.mean == 0.0 and empty.percentile(99) == 0

    def test_collect_sorted_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        registry.gauge("g")
        assert [m.name for m in registry.collect(Counter)] == ["a", "b"]
        assert [m.name for m in registry.collect(Gauge)] == ["g"]
        assert len(registry.collect()) == 3

    def test_format_labels(self):
        assert format_labels(()) == ""
        assert format_labels((("a", 1), ("b", "x"))) == "{a=1,b=x}"


class TestInstrumentationFacade:
    def test_engine_disabled_by_default(self):
        engine = Engine()
        assert engine.instruments is NULL_INSTRUMENTS
        assert not engine.instruments.enabled

    def test_null_instruments_record_nothing(self):
        NULL_INSTRUMENTS.count("x", 5)
        NULL_INSTRUMENTS.set_gauge("g", 1)
        NULL_INSTRUMENTS.observe("h", 2)
        NULL_INSTRUMENTS.emit("cat", a=1)
        assert len(NULL_INSTRUMENTS.metrics) == 0
        assert NULL_INSTRUMENTS.metrics.value("x") == 0
        assert NULL_INSTRUMENTS.chrome_trace()["traceEvents"] == []
        assert "disabled" in NULL_INSTRUMENTS.report()

    def test_enable_instrumentation_installs_tracer_too(self):
        engine = Engine()
        ins = install_instrumentation(engine)
        assert engine.instruments is ins
        assert engine.tracer is ins.tracer
        assert ins.enabled and ins.tracer.enabled

    def test_enable_tracing_still_returns_live_tracer(self):
        engine = Engine()
        tracer = install_instrumentation(engine).tracer
        tracer.emit("x", k=1)
        assert len(tracer.records) == 1
        # ... and the full facade came along for the ride.
        assert engine.instruments.enabled

    def test_gauge_samples_are_traced(self):
        engine = Engine()
        ins = install_instrumentation(engine)
        ins.set_gauge("depth", 2, rank=0)
        (record,) = ins.tracer.select("gauge")
        assert record["name"] == "depth" and record["value"] == 2

    def test_report_contains_all_kinds(self):
        ins = Instrumentation(Engine())
        ins.count("c", 3, net="tcp")
        ins.set_gauge("g", 7)
        ins.observe("h", 1.5)
        text = ins.report()
        assert "c" in text and "{net=tcp}" in text and "3" in text
        assert "high-water" in text and "p99" in text


class TestStackCounters:
    def _pingpong_world(self, enable=True, size=512, rounds=3):
        world = MPIWorld(two_node_cluster(networks=("sisci",)))
        instruments = (install_instrumentation(world.engine) if enable
                       else world.engine.instruments)

        def program(mpi):
            comm = mpi.comm_world
            for _ in range(rounds):
                if comm.rank == 0:
                    yield from comm.send(b"", dest=1, tag=1, size=size)
                    yield from comm.recv(source=1, tag=2)
                else:
                    yield from comm.recv(source=0, tag=1)
                    yield from comm.send(b"", dest=0, tag=2, size=size)

        world.run(program)
        return world, instruments

    def test_counters_zero_when_disabled(self):
        world, instruments = self._pingpong_world(enable=False)
        assert instruments is NULL_INSTRUMENTS
        assert len(instruments.metrics) == 0
        assert instruments.metrics.total("mad.messages") == 0
        assert world.engine.events_executed > 0  # the run itself happened

    def test_per_channel_bytes_match_tracer(self):
        world, ins = self._pingpong_world()
        traced = sum(r["nbytes"] for r in
                     ins.tracer.select("net.deliver", fabric="sisci"))
        assert traced > 0
        assert ins.metrics.total("mad.bytes") == traced
        assert ins.metrics.total("mad.messages") == len(
            ins.tracer.select("net.deliver", fabric="sisci"))

    def test_packet_type_counts(self):
        _, ins = self._pingpong_world(rounds=2)
        m = ins.metrics
        for rank, sent in ((0, 2), (1, 2)):
            assert m.value("chmad.packets", pkt="MAD_SHORT_PKT",
                           protocol="sisci", rank=rank, dir="send") == sent
            assert m.value("chmad.packets", pkt="MAD_SHORT_PKT",
                           protocol="sisci", rank=rank, dir="recv") == sent
        assert m.total("adi.mode") == 4  # every send decided a mode

    def test_rendezvous_mode_counted(self):
        _, ins = self._pingpong_world(size=100_000, rounds=1)
        assert ins.metrics.value("adi.mode", mode="rendezvous",
                                 device="ch_mad", rank=0) == 1
        for pkt in ("MAD_REQUEST_PKT", "MAD_SENDOK_PKT", "MAD_RNDV_PKT"):
            assert ins.metrics.total("chmad.packets") >= 1, pkt

    def test_express_vs_cheaper_blocks(self):
        _, ins = self._pingpong_world(rounds=2)
        m = ins.metrics
        # Every ch_mad packet has an EXPRESS header; eager bodies ride
        # CHEAPER (the §4.2.2 split).
        express = sum(c.value for c in m.collect(Counter)
                      if c.name == "mad.blocks"
                      and dict(c.labels)["mode"] == "EXPRESS")
        cheaper = sum(c.value for c in m.collect(Counter)
                      if c.name == "mad.blocks"
                      and dict(c.labels)["mode"] == "CHEAPER")
        assert express == 4  # one header per eager packet
        assert cheaper == 4  # one body per non-empty eager packet

    def test_polling_and_sendgate_instruments(self):
        _, ins = self._pingpong_world()
        assert ins.metrics.total("poll.wakeups") > 0
        gauges = [g for g in ins.metrics.collect(Gauge)
                  if g.name == "sendgate.depth"]
        assert gauges and all(g.high_water >= 1 for g in gauges)

    def test_tcp_poller_idle_time_counted(self):
        world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))
        ins = install_instrumentation(world.engine)

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"", dest=1, tag=1, size=64)
            else:
                yield from comm.recv(source=0, tag=1)

        world.run(program)
        # The TCP pollers carried nothing but still burned select() time.
        assert ins.metrics.value("poll.idle_ns", source="tcp@0") > 0
        assert ins.metrics.value("poll.wakeups", source="tcp@0",
                                 mode="periodic") > 0


class TestChromeTraceExport:
    def test_round_trips_with_valid_fields(self, tmp_path):
        world, ins = TestStackCounters()._pingpong_world(size=100_000,
                                                         rounds=1)
        path = ins.export_chrome_trace(str(tmp_path / "trace.json"))
        with open(path) as fh:
            data = json.loads(fh.read())
        events = data["traceEvents"]
        assert len(events) == len(ins.tracer.records)
        for event in events:
            assert event["ph"] in {"i", "X", "C"}
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["pid"], int)

    def test_event_shapes(self):
        engine = Engine()
        ins = install_instrumentation(engine)
        ins.emit("chmad.send", src=1, pkt="MAD_SHORT_PKT", protocol="tcp")
        ins.emit("net.deliver", fabric="sisci", src=0, dst=1, nbytes=64,
                 latency=2500)
        ins.set_gauge("sendgate.depth", 3, rank=0)
        instant, span, counter = ins.chrome_trace()["traceEvents"]
        assert instant["ph"] == "i" and instant["name"] == "MAD_SHORT_PKT"
        assert instant["tid"] == "tcp" and instant["pid"] == 1
        assert span["ph"] == "X" and span["dur"] == 2.5
        assert counter["ph"] == "C"
        assert counter["args"] == {"sendgate.depth": 3}
