"""Integration tests: point-to-point MPI over the full simulated stack."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIRankError, MPITagError, MPITruncationError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from tests.helpers import run_ranks

pytestmark = pytest.mark.filterwarnings("ignore")


class TestBlockingSendRecv:
    def test_basic_roundtrip(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send({"x": 1}, dest=1, tag=5)
                return "sent"
            data, status = yield from comm.recv(source=0, tag=5)
            return (data, status.source, status.tag)

        results = run_ranks(program)
        assert results == ["sent", ({"x": 1}, 0, 5)]

    def test_eager_and_rendezvous_payloads(self):
        # 100 B -> eager; 1 MB -> rendezvous (SCI threshold is 8 KB).
        for size in (100, 1_000_000):
            def program(mpi, size=size):
                comm = mpi.comm_world
                payload = np.arange(size // 8, dtype=np.float64)
                if comm.rank == 0:
                    yield from comm.send(payload, dest=1, size=size)
                    return None
                data, status = yield from comm.recv(source=0)
                assert status.count == size
                return float(np.sum(data))

            results = run_ranks(program)
            assert results[1] == float(np.sum(np.arange(size // 8)))

    def test_unexpected_message_buffered(self):
        """Sender races ahead; receive posted later still matches."""
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"early", dest=1, tag=1)
                return None
            # Delay the receive far beyond the message arrival.
            from repro.sim.coroutines import sleep
            from repro.units import us
            yield sleep(us(500))
            data, _ = yield from comm.recv(source=0, tag=1)
            return data

        assert run_ranks(program)[1] == b"early"

    def test_late_recv_rendezvous(self):
        """A rendezvous request that arrives before the receive is posted."""
        def program(mpi):
            comm = mpi.comm_world
            big = 100_000
            if comm.rank == 0:
                yield from comm.send(b"", dest=1, tag=2, size=big)
                return "sent"
            from repro.sim.coroutines import sleep
            from repro.units import us
            yield sleep(us(800))
            data, status = yield from comm.recv(source=0, tag=2)
            return status.count

        assert run_ranks(program) == ["sent", 100_000]

    def test_message_ordering_same_tag(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                for i in range(8):
                    yield from comm.send(i, dest=1, tag=3)
                return None
            got = []
            for _ in range(8):
                data, _ = yield from comm.recv(source=0, tag=3)
                got.append(data)
            return got

        assert run_ranks(program)[1] == list(range(8))

    def test_tag_selectivity(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send("a", dest=1, tag=10)
                yield from comm.send("b", dest=1, tag=20)
                return None
            second, _ = yield from comm.recv(source=0, tag=20)
            first, _ = yield from comm.recv(source=0, tag=10)
            return (first, second)

        assert run_ranks(program)[1] == ("a", "b")

    def test_any_source_any_tag(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send("wild", dest=1, tag=42)
                return None
            data, status = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            return (data, status.source, status.tag)

        assert run_ranks(program)[1] == ("wild", 0, 42)

    def test_any_source_across_senders(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 2:
                got = set()
                for _ in range(2):
                    data, status = yield from comm.recv(source=ANY_SOURCE, tag=1)
                    got.add((data, status.source))
                return sorted(got)
            yield from comm.send(f"from{comm.rank}", dest=2, tag=1)
            return None

        results = run_ranks(program, nranks=3)
        assert results[2] == [("from0", 0), ("from1", 1)]


class TestNonBlocking:
    def test_isend_irecv(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.isend(b"async", dest=1, tag=9)
                yield from req.wait()
                return req.completed
            req = comm.irecv(source=0, tag=9)
            data, status = yield from req.wait()
            return data

        assert run_ranks(program) == [True, b"async"]

    def test_isend_overlaps_compute(self):
        """isend runs in a temporary thread while the main thread computes."""
        def program(mpi):
            from repro.sim.coroutines import charge, now
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.isend(b"x" * 100, dest=1, size=1_000_000)
                yield charge(us(100))  # overlap with the rendezvous
                yield from req.wait()
                return None
            start = yield now()
            data, _ = yield from comm.recv(source=0)
            return None

        run_ranks(program)  # completes without deadlock

    def test_test_polls_completion(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                yield sleep(us(300))
                yield from comm.send(1, dest=1)
                return None
            req = comm.irecv(source=0)
            done_first, _ = req.test()
            while True:
                done, result = req.test()
                if done:
                    break
                yield sleep(us(50))
            return (done_first, result[0])

        assert run_ranks(program)[1] == (False, 1)

    def test_waitall(self):
        def program(mpi):
            from repro.mpi.request import Request
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i) for i in range(4)]
                yield from Request.waitall(reqs)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
            results = yield from Request.waitall(reqs)
            return [r[0] for r in results]

        assert run_ranks(program)[1] == [0, 1, 2, 3]


class TestSendRecvCombined:
    def test_exchange_without_deadlock(self):
        def program(mpi):
            comm = mpi.comm_world
            other = 1 - comm.rank
            data, _ = yield from comm.sendrecv(f"hi-{comm.rank}", dest=other,
                                               sendtag=1, source=other,
                                               recvtag=1)
            return data

        assert run_ranks(program) == ["hi-1", "hi-0"]

    def test_large_exchange_rendezvous_both_ways(self):
        def program(mpi):
            comm = mpi.comm_world
            other = 1 - comm.rank
            data, status = yield from comm.sendrecv(
                b"", dest=other, sendtag=1, source=other, recvtag=1,
                size=500_000,
            )
            return status.count

        assert run_ranks(program) == [500_000, 500_000]


class TestProbe:
    def test_probe_then_recv(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"abcdef", dest=1, tag=4)
                return None
            status = yield from comm.probe(source=0, tag=4)
            data, _ = yield from comm.recv(source=0, tag=4)
            return (status.count, data)

        assert run_ranks(program)[1] == (6, b"abcdef")

    def test_iprobe_miss_and_hit(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                yield sleep(us(200))
                yield from comm.send(1, dest=1)
                return None
            flag_before, _ = comm.iprobe(source=0)
            while True:
                flag, status = comm.iprobe(source=0)
                if flag:
                    break
                yield sleep(us(50))
            yield from comm.recv(source=0)
            return (flag_before, flag)

        assert run_ranks(program)[1] == (False, True)


class TestEdgeCases:
    def test_proc_null(self):
        def program(mpi):
            comm = mpi.comm_world
            yield from comm.send("ignored", dest=PROC_NULL)
            data, status = yield from comm.recv(source=PROC_NULL)
            return (data, status.source, status.count)

        results = run_ranks(program)
        assert results[0] == (None, PROC_NULL, 0)

    def test_zero_byte_message(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(None, dest=1, tag=1, size=0)
                return None
            data, status = yield from comm.recv(source=0, tag=1)
            return (data, status.count)

        assert run_ranks(program)[1] == (None, 0)

    def test_truncation_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"x" * 100, dest=1, tag=1, size=100)
                return None
            try:
                yield from comm.recv(source=0, tag=1, size=10)
            except MPITruncationError:
                return "truncated"
            return "no error"

        assert run_ranks(program)[1] == "truncated"

    def test_invalid_rank_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                with pytest.raises(MPIRankError):
                    yield from comm.send(1, dest=99)
            return None
            yield  # pragma: no cover

        run_ranks(program)

    def test_invalid_tag_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                with pytest.raises(MPITagError):
                    yield from comm.send(1, dest=1, tag=-5)
            yield from comm.barrier()
            return None

        run_ranks(program)

    def test_deadlock_detection(self):
        def program(mpi):
            comm = mpi.comm_world
            # Both ranks receive; nobody sends.
            yield from comm.recv(source=1 - comm.rank)

        with pytest.raises(DeadlockError):
            run_ranks(program)

    def test_send_value_semantics(self):
        """Mutating the buffer after send must not affect the receiver."""
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                buf = np.ones(4, dtype=np.int32)
                req = comm.isend(buf, dest=1, tag=1)
                buf[:] = 999  # mutate immediately after isend
                yield from req.wait()
                return None
            data, _ = yield from comm.recv(source=0, tag=1)
            return list(map(int, data))

        assert run_ranks(program)[1] == [1, 1, 1, 1]


class TestBufferAPI:
    def test_send_recv_numpy_contiguous(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                data = np.arange(100, dtype=np.float64)
                yield from comm.Send(data, dest=1, tag=3)
                return None
            buf = np.empty(100, dtype=np.float64)
            status = yield from comm.Recv(buf, source=0, tag=3)
            return (float(buf.sum()), status.count)

        total, count = run_ranks(program)[1]
        assert total == float(np.arange(100).sum())
        assert count == 800

    def test_send_recv_strided_datatype(self):
        from repro.mpi.datatypes import DOUBLE, vector

        def program(mpi):
            comm = mpi.comm_world
            column = vector(count=4, blocklength=1, stride=5,
                            base=DOUBLE).commit()
            if comm.rank == 0:
                matrix = np.arange(20, dtype=np.float64)
                yield from comm.Send((matrix, 1, column), dest=1)
                return None
            out = np.zeros(20, dtype=np.float64)
            yield from comm.Recv((out, 1, column), source=0)
            return [out[0], out[5], out[10], out[15], out[1]]

        assert run_ranks(program)[1] == [0.0, 5.0, 10.0, 15.0, 0.0]

    def test_isend_irecv_numpy(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                data = np.arange(64, dtype=np.float64)
                request = comm.Isend(data, dest=1, tag=5)
                data[:] = -1  # buffer reusable immediately (packed at call)
                yield from request.wait()
                return None
            buf = np.empty(64, dtype=np.float64)
            request = comm.Irecv(buf, source=0, tag=5)
            status = yield from request.wait()
            assert request.completed
            return (float(buf.sum()), status.count, status.source)

        total, count, source = run_ranks(program)[1]
        assert total == float(np.arange(64).sum())
        assert count == 64 * 8
        assert source == 0

    def test_isend_strided_datatype(self):
        from repro.mpi.datatypes import DOUBLE, vector

        def program(mpi):
            comm = mpi.comm_world
            column = vector(count=4, blocklength=1, stride=5,
                            base=DOUBLE).commit()
            if comm.rank == 0:
                matrix = np.arange(20, dtype=np.float64)
                request = comm.Isend((matrix, 1, column), dest=1)
                yield from request.wait()
                return None
            out = np.zeros(20, dtype=np.float64)
            request = comm.Irecv((out, 1, column), source=0)
            yield from request.wait()
            return [out[0], out[5], out[10], out[15]]

        assert run_ranks(program)[1] == [0.0, 5.0, 10.0, 15.0]

    def test_sendrecv_buffer_exchange(self):
        def program(mpi):
            comm = mpi.comm_world
            mine = np.full(16, comm.rank, dtype=np.int64)
            theirs = np.empty(16, dtype=np.int64)
            status = yield from comm.Sendrecv(
                mine, dest=1 - comm.rank, sendtag=2,
                recvbuf=theirs, source=1 - comm.rank, recvtag=2)
            assert status.source == 1 - comm.rank
            return int(theirs.sum())

        assert run_ranks(program) == [16, 0]
