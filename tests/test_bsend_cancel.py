"""Tests for buffered sends and receive cancellation."""

import pytest

from repro.errors import MPIError
from tests.helpers import run_ranks


class TestBsend:
    def test_bsend_roundtrip(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.attach_buffer(64 * 1024)
                yield from comm.bsend(b"buffered", dest=1, tag=1)
                yield from comm.barrier()
                assert mpi.detach_buffer() == 64 * 1024
                return None
            data, _ = yield from comm.recv(source=0, tag=1)
            yield from comm.barrier()
            return data

        assert run_ranks(program)[1] == b"buffered"

    def test_bsend_returns_before_recv_posted(self):
        def program(mpi):
            from repro.sim.coroutines import now, sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.attach_buffer(4096)
                t0 = yield now()
                yield from comm.bsend(b"x" * 64, dest=1, tag=1, size=64)
                t1 = yield now()
                yield from comm.barrier()
                return t1 - t0
            yield sleep(us(900))
            yield from comm.recv(source=0, tag=1)
            yield from comm.barrier()
            return None

        # Local completion: far below the receiver's 900 us delay.
        assert run_ranks(program)[0] < 200_000

    def test_buffer_exhaustion_raises(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.attach_buffer(100)
                with pytest.raises(MPIError, match="MPI_ERR_BUFFER"):
                    yield from comm.bsend(b"", dest=1, tag=1, size=200)
            yield from comm.barrier()
            return None

        run_ranks(program)

    def test_buffer_space_reclaimed_after_delivery(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.attach_buffer(100)
                for i in range(5):  # 5 x 80 bytes through a 100-byte buffer
                    yield from comm.bsend(i, dest=1, tag=1, size=80)
                    # Wait for the receiver to drain before the next one.
                    yield from comm.recv(source=1, tag=2)
                return None
            got = []
            for _ in range(5):
                data, _ = yield from comm.recv(source=0, tag=1)
                got.append(data)
                yield from comm.send(None, dest=0, tag=2, size=0)
            return got

        assert run_ranks(program)[1] == [0, 1, 2, 3, 4]

    def test_double_attach_rejected(self):
        def program(mpi):
            mpi.attach_buffer(10)
            with pytest.raises(MPIError, match="already attached"):
                mpi.attach_buffer(10)
            yield from mpi.comm_world.barrier()
            return None

        run_ranks(program)


class TestCancel:
    def test_cancel_pending_recv(self):
        def program(mpi):
            comm = mpi.comm_world
            req = comm.irecv(source=1 - comm.rank, tag=9)
            assert req.cancel() is True
            data, status = yield from req.wait()
            yield from comm.barrier()
            return (data, status.cancelled)

        results = run_ranks(program)
        assert results == [(None, True), (None, True)]

    def test_cancel_after_match_fails(self):
        def program(mpi):
            from repro.sim.coroutines import sleep
            from repro.units import us
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=1)
                yield sleep(us(800))  # the message lands and matches
                cancelled = req.cancel()
                data, status = yield from req.wait()
                return (cancelled, data, status.cancelled)
            yield from comm.send("made it", dest=0, tag=1)
            return None

        assert run_ranks(program)[0] == (False, "made it", False)

    def test_cancelled_recv_does_not_steal_later_message(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                doomed = comm.irecv(source=1, tag=1)
                assert doomed.cancel()
                yield from doomed.wait()
                live = comm.irecv(source=1, tag=1)
                yield from comm.barrier()
                data, _ = yield from live.wait()
                return data
            yield from comm.barrier()
            yield from comm.send("for-the-living", dest=0, tag=1)
            return None

        assert run_ranks(program)[0] == "for-the-living"
