"""Tests for units, status, constants, reduce ops and error types."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.errors import MPIError, ReproError, SimulationError
from repro.mpi.constants import UNDEFINED, infer_size
from repro.mpi.datatypes import DOUBLE, INT
from repro.mpi.reduce_ops import (
    BAND, BOR, BXOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, user_op,
)
from repro.mpi.status import Status


class TestUnits:
    def test_time_conversions(self):
        assert units.us(1) == 1000
        assert units.ms(2) == 2_000_000
        assert units.seconds(1) == 1_000_000_000
        assert units.to_us(2500) == 2.5
        assert units.to_seconds(units.seconds(3)) == 3.0

    def test_rounding(self):
        assert units.us(1.5) == 1500
        assert units.ns(0.6) == 1

    def test_sizes(self):
        assert units.kib(64) == 65536
        assert units.mib(1) == 1048576

    def test_bandwidth_paper_convention(self):
        # 1 MB in 1 second -> 1 MB/s with MB = 10^6.
        assert units.bandwidth_mb_s(1_000_000, units.seconds(1)) == 1.0

    def test_bandwidth_zero_transfer(self):
        assert units.bandwidth_mb_s(0, 0) == 0.0
        with pytest.raises(ValueError):
            units.bandwidth_mb_s(10, 0)

    def test_per_byte_ns(self):
        assert units.per_byte_ns(100.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            units.per_byte_ns(0)

    @given(st.integers(1, 10**9), st.integers(1, 10**12))
    @settings(max_examples=50, deadline=None)
    def test_bandwidth_positive(self, size, elapsed):
        assert units.bandwidth_mb_s(size, elapsed) > 0


class TestInferSize:
    def test_exact_for_bytes(self):
        assert infer_size(b"12345") == 5
        assert infer_size(bytearray(7)) == 7

    def test_exact_for_numpy(self):
        assert infer_size(np.zeros(10, dtype=np.float64)) == 80

    def test_none_is_zero(self):
        assert infer_size(None) == 0

    def test_scalars(self):
        assert infer_size(7) == 8
        assert infer_size(1.5) == 8
        assert infer_size(True) == 1
        assert infer_size(1 + 2j) == 16

    def test_string_utf8(self):
        assert infer_size("abc") == 3

    def test_containers_recursive(self):
        assert infer_size([1, 2]) == 8 + 16
        assert infer_size({"k": 1.0}) == 8 + 1 + 8

    @given(st.binary(max_size=2048))
    @settings(max_examples=50, deadline=None)
    def test_bytes_exact_property(self, blob):
        assert infer_size(blob) == len(blob)


class TestStatus:
    def test_get_count_bytes(self):
        assert Status(count=12).get_count() == 12

    def test_get_count_elements(self):
        assert Status(count=12).get_count(INT) == 3
        assert Status(count=16).get_count(DOUBLE) == 2

    def test_get_count_partial_is_undefined(self):
        assert Status(count=10).get_count(DOUBLE) == UNDEFINED


class TestReduceOps:
    def test_scalar_ops(self):
        assert SUM(2, 3) == 5
        assert PROD(2, 3) == 6
        assert MAX(2, 3) == 3
        assert MIN(2, 3) == 2
        assert LAND(1, 0) is False
        assert LOR(1, 0) is True
        assert BAND(0b110, 0b011) == 0b010
        assert BOR(0b110, 0b011) == 0b111
        assert BXOR(0b110, 0b011) == 0b101

    def test_array_ops_elementwise(self):
        a = np.array([1, 5, 3])
        b = np.array([4, 2, 3])
        assert np.array_equal(SUM(a, b), [5, 7, 6])
        assert np.array_equal(MAX(a, b), [4, 5, 3])

    def test_minloc_maxloc(self):
        assert MINLOC((3, 0), (1, 1)) == (1, 1)
        assert MINLOC((1, 0), (1, 1)) == (1, 0)  # tie -> lower index
        assert MAXLOC((3, 0), (5, 1)) == (5, 1)
        assert MAXLOC((5, 0), (5, 1)) == (5, 0)

    def test_reduce_sequence(self):
        assert SUM.reduce_sequence([1, 2, 3, 4]) == 10
        with pytest.raises(MPIError):
            SUM.reduce_sequence([])

    def test_user_op(self):
        concat = user_op(lambda a, b: a + b, commutative=False, name="CAT")
        assert concat("a", "b") == "ab"
        assert not concat.commutative

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_builtin(self, values):
        assert SUM.reduce_sequence(values) == sum(values)

    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 20)),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_minloc_finds_global_min(self, pairs):
        result = MINLOC.reduce_sequence(pairs)
        best_value = min(v for v, _ in pairs)
        assert result[0] == best_value


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        from repro import errors
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not ReproError:
                assert issubclass(obj, ReproError), name

    def test_mpi_error_classes(self):
        from repro.errors import MPIRankError, MPITruncationError
        assert MPIRankError().error_class == "MPI_ERR_RANK"
        assert MPITruncationError().error_class == "MPI_ERR_TRUNCATE"

    def test_deadlock_error_carries_blocked_list(self):
        from repro.errors import DeadlockError
        err = DeadlockError("hung", blocked=["rank0.main"])
        assert err.blocked == ["rank0.main"]
