"""Differential collective tests under the online checker.

Every algorithm variant in the collective registry (plus the legacy
:mod:`repro.mpi.algorithms` surface) runs on each of the three paper
networks (SCI, TCP, BIP/Myrinet) and is compared against the flat
default and a pure-Python reference computed outside the simulator.
The checker is enabled for every run: an algorithm that silently
violates non-overtaking, the rendezvous handshake or the finalize leak
rules fails here even when its numeric answer happens to be right.

The registry differential section runs on a multirail SMP cluster
(2 ranks/node, 2 rails/node) so the node-aware and multi-lane families
exercise their real decompositions rather than degenerate fallbacks.
"""

import numpy as np
import pytest

from repro.cluster import MPIWorld, multirail_smp_cluster
from repro.mpi import coll
from repro.mpi.algorithms import (
    ALLREDUCE_ALGORITHMS,
    BCAST_ALGORITHMS,
)
from repro.mpi.reduce_ops import MAX, MINLOC, SUM
from repro.sim.engine import install_checker
from tests.helpers import linear_cluster

allgather_bruck = coll.get("allgather", "bruck").fn

NETWORKS = ["sisci", "tcp", "bip"]


def run_checked(program, nranks, network):
    """Run ``program`` with the checker on; fail on any violation."""
    world = MPIWorld(linear_cluster(nranks, networks=(network,)))
    checker = install_checker(world.engine)
    results = world.run(program)
    assert checker.violations == []
    return results


def run_checked_smp(program, network, nodes=4, processes_per_node=2):
    """Checked run on the multirail SMP cluster (8 ranks, 2 rails)."""
    world = MPIWorld(multirail_smp_cluster(
        nodes=nodes, processes_per_node=processes_per_node,
        rails=2, network=network))
    checker = install_checker(world.engine)
    results = world.run(program)
    assert checker.violations == []
    return results


def canon(value):
    """ndarray/list-insensitive comparison form."""
    if isinstance(value, np.ndarray):
        return tuple(value.tolist())
    if isinstance(value, (list, tuple)):
        return tuple(canon(v) for v in value)
    return value


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("name", sorted(BCAST_ALGORITHMS))
def test_bcast_algorithms_match_reference(name, network):
    algorithm = BCAST_ALGORITHMS[name]
    payload = ("blob", [1, 2, 3])

    def program(mpi):
        comm = mpi.comm_world
        obj = payload if comm.rank == 2 else None
        value = yield from algorithm(comm, obj, root=2)
        return value

    assert run_checked(program, 4, network) == [payload] * 4


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("nranks", [3, 4])
@pytest.mark.parametrize("name", sorted(ALLREDUCE_ALGORITHMS))
def test_allreduce_algorithms_match_reference(name, nranks, network):
    # 3 ranks exercises recursive doubling's non-power-of-two fold.
    algorithm = ALLREDUCE_ALGORITHMS[name]
    contributions = [(rank + 1) * 10 for rank in range(nranks)]

    def program(mpi):
        comm = mpi.comm_world
        total = yield from algorithm(comm, contributions[comm.rank], SUM)
        peak = yield from algorithm(comm, contributions[comm.rank], MAX)
        return (total, peak)

    expected = (sum(contributions), max(contributions))
    assert run_checked(program, nranks, network) == [expected] * nranks


@pytest.mark.parametrize("network", NETWORKS)
def test_noncommutative_allreduce_falls_back_cleanly(network):
    # MINLOC on (value, rank) pairs — the classic rank-carrying reduce.
    algorithm = ALLREDUCE_ALGORITHMS["recursive_doubling"]
    values = [5, 1, 7, 1]

    def program(mpi):
        comm = mpi.comm_world
        pair = yield from algorithm(comm, (values[comm.rank], comm.rank),
                                    MINLOC)
        return pair

    assert run_checked(program, 4, network) == [(1, 1)] * 4


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("nranks", [3, 4])
def test_bruck_allgather_matches_ring_and_reference(nranks, network):
    def program(mpi):
        comm = mpi.comm_world
        bruck = yield from allgather_bruck(comm, comm.rank * 100)
        ring = yield from comm.allgather(comm.rank * 100)
        return (list(bruck), list(ring))

    expected = [rank * 100 for rank in range(nranks)]
    for bruck, ring in run_checked(program, nranks, network):
        assert bruck == expected
        assert ring == expected


# ---------------------------------------------------------------------------
# registry differential: every registered algorithm vs the flat default
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("name", coll.names("bcast"))
def test_registered_bcast_matches_default(name, network):
    def program(mpi):
        comm = mpi.comm_world
        data = np.arange(16.0) * 3 if comm.rank == 1 else None
        got = yield from comm.bcast(data, root=1, algorithm=name)
        ref = yield from comm.bcast(data, root=1)
        return (canon(got), canon(ref))

    expected = canon(np.arange(16.0) * 3)
    for got, ref in run_checked_smp(program, network):
        assert got == ref == expected


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("name", coll.names("allreduce"))
def test_registered_allreduce_matches_default(name, network):
    def program(mpi):
        comm = mpi.comm_world
        data = np.full(8, float(comm.rank + 1))
        got = yield from comm.allreduce(data, SUM, algorithm=name)
        ref = yield from comm.allreduce(data, SUM)
        peak = yield from comm.allreduce(comm.rank * 10, MAX,
                                         algorithm=name)
        return (canon(got), canon(ref), peak)

    results = run_checked_smp(program, network)
    total = sum(range(1, 9))
    for got, ref, peak in results:
        assert got == ref == (float(total),) * 8
        assert peak == 70


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("name", coll.names("allgather"))
def test_registered_allgather_matches_default(name, network):
    def program(mpi):
        comm = mpi.comm_world
        data = np.full(6, float(comm.rank))
        got = yield from comm.allgather(data, algorithm=name)
        ref = yield from comm.allgather(data)
        return (canon(got), canon(ref))

    expected = tuple((float(r),) * 6 for r in range(8))
    for got, ref in run_checked_smp(program, network):
        assert got == ref == expected


@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("name", coll.names("barrier"))
def test_registered_barrier_is_clean(name, network):
    # A barrier has no value to compare; sandwich it between allreduces
    # so stolen matches or leaked collective state would corrupt data
    # (and the checker sees the full exchange).
    def program(mpi):
        comm = mpi.comm_world
        before = yield from comm.allreduce(1, SUM)
        yield from comm.barrier(algorithm=name)
        after = yield from comm.allreduce(comm.rank, SUM)
        return (before, after)

    assert run_checked_smp(program, network) == [(8, 28)] * 8


@pytest.mark.parametrize("network", NETWORKS)
def test_collective_stack_composes_under_checker(network):
    # Chain the registry variants with the default collectives in one
    # program: cross-algorithm interference (stolen matches, leaked
    # rendezvous state) would trip the checker here.
    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        root_value = yield from BCAST_ALGORITHMS["binomial"](
            comm, "go" if me == 0 else None, root=0)
        total = yield from ALLREDUCE_ALGORITHMS["recursive_doubling"](
            comm, me + 1, SUM)
        everyone = yield from allgather_bruck(comm, me)
        slices = yield from comm.alltoall(
            [f"{me}->{dest}" for dest in range(comm.size)])
        prefix = yield from comm.scan(me + 1)
        yield from comm.barrier()
        return (root_value, total, tuple(everyone), tuple(slices), prefix)

    results = run_checked(program, 4, network)
    for rank, (root_value, total, everyone, slices, prefix) in \
            enumerate(results):
        assert root_value == "go"
        assert total == 10
        assert everyone == (0, 1, 2, 3)
        assert slices == tuple(f"{src}->{rank}" for src in range(4))
        assert prefix == sum(range(1, rank + 2))
