"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_initial_time_is_zero():
    assert Engine().now == 0


def test_schedule_runs_callback_at_delay():
    engine = Engine()
    seen = []
    engine.schedule(100, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [100]
    assert engine.now == 100


def test_schedule_with_args():
    engine = Engine()
    seen = []
    engine.schedule(5, seen.append, "x")
    engine.run()
    assert seen == ["x"]


def test_events_fire_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30, seen.append, "c")
    engine.schedule(10, seen.append, "a")
    engine.schedule(20, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    engine = Engine()
    seen = []
    for label in "abcdef":
        engine.schedule(42, seen.append, label)
    engine.run()
    assert seen == list("abcdef")


def test_nested_scheduling_from_callbacks():
    engine = Engine()
    seen = []

    def outer():
        seen.append(("outer", engine.now))
        engine.schedule(7, inner)

    def inner():
        seen.append(("inner", engine.now))

    engine.schedule(3, outer)
    engine.run()
    assert seen == [("outer", 3), ("inner", 10)]


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: engine.schedule(0, seen.append, engine.now))
    engine.run()
    assert seen == [10]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    seen = []
    event = engine.schedule(10, seen.append, "no")
    engine.schedule(5, seen.append, "yes")
    event.cancel()
    engine.run()
    assert seen == ["yes"]


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    seen = []
    engine.schedule(10, seen.append, "early")
    engine.schedule(1000, seen.append, "late")
    final = engine.run(until=500)
    assert seen == ["early"]
    assert final == 500
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_with_empty_queue_advances_clock():
    engine = Engine()
    assert engine.run(until=250) == 250
    assert engine.now == 250


def test_max_events_guards_against_livelock():
    engine = Engine()

    def respawn():
        engine.schedule(0, respawn)

    engine.schedule(0, respawn)
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=100)


def test_pending_counts_live_events_only():
    engine = Engine()
    e1 = engine.schedule(10, lambda: None)
    engine.schedule(20, lambda: None)
    assert engine.pending() == 2
    e1.cancel()
    assert engine.pending() == 1


def test_step_returns_false_when_drained():
    engine = Engine()
    engine.schedule(1, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_events_executed_counter():
    engine = Engine()
    for i in range(5):
        engine.schedule(i, lambda: None)
    engine.run()
    assert engine.events_executed == 5


def test_run_is_not_reentrant():
    engine = Engine()
    failure = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            failure.append(exc)

    engine.schedule(1, reenter)
    engine.run()
    assert len(failure) == 1
