"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_initial_time_is_zero():
    assert Engine().now == 0


def test_schedule_runs_callback_at_delay():
    engine = Engine()
    seen = []
    engine.schedule(100, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [100]
    assert engine.now == 100


def test_schedule_with_args():
    engine = Engine()
    seen = []
    engine.schedule(5, seen.append, "x")
    engine.run()
    assert seen == ["x"]


def test_events_fire_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30, seen.append, "c")
    engine.schedule(10, seen.append, "a")
    engine.schedule(20, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    engine = Engine()
    seen = []
    for label in "abcdef":
        engine.schedule(42, seen.append, label)
    engine.run()
    assert seen == list("abcdef")


def test_nested_scheduling_from_callbacks():
    engine = Engine()
    seen = []

    def outer():
        seen.append(("outer", engine.now))
        engine.schedule(7, inner)

    def inner():
        seen.append(("inner", engine.now))

    engine.schedule(3, outer)
    engine.run()
    assert seen == [("outer", 3), ("inner", 10)]


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: engine.schedule(0, seen.append, engine.now))
    engine.run()
    assert seen == [10]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    seen = []
    event = engine.schedule(10, seen.append, "no")
    engine.schedule(5, seen.append, "yes")
    event.cancel()
    engine.run()
    assert seen == ["yes"]


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    seen = []
    engine.schedule(10, seen.append, "early")
    engine.schedule(1000, seen.append, "late")
    final = engine.run(until=500)
    assert seen == ["early"]
    assert final == 500
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_with_empty_queue_advances_clock():
    engine = Engine()
    assert engine.run(until=250) == 250
    assert engine.now == 250


def test_max_events_guards_against_livelock():
    engine = Engine()

    def respawn():
        engine.schedule(0, respawn)

    engine.schedule(0, respawn)
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=100)


def test_pending_counts_live_events_only():
    engine = Engine()
    e1 = engine.schedule(10, lambda: None)
    engine.schedule(20, lambda: None)
    assert engine.pending() == 2
    e1.cancel()
    assert engine.pending() == 1


def test_step_returns_false_when_drained():
    engine = Engine()
    engine.schedule(1, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_events_executed_counter():
    engine = Engine()
    for i in range(5):
        engine.schedule(i, lambda: None)
    engine.run()
    assert engine.events_executed == 5


def test_run_is_not_reentrant():
    engine = Engine()
    failure = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            failure.append(exc)

    engine.schedule(1, reenter)
    engine.run()
    assert len(failure) == 1


# -- hot-path machinery: immediate queue, pooling, clock queue -------------


def test_call_soon_interleaves_fifo_with_zero_delay_schedule():
    """call_soon and schedule(0, ...) share one (time, seq) order."""
    engine = Engine()
    seen = []

    def kickoff():
        engine.schedule(0, seen.append, "a")
        engine.call_soon(seen.append, "b")
        engine.schedule(0, seen.append, "c")
        engine.call_soon(seen.append, "d")

    engine.schedule(3, kickoff)
    engine.run()
    assert seen == ["a", "b", "c", "d"]


def test_schedule_discard_merges_with_schedule_by_time_and_seq():
    engine = Engine()
    seen = []
    engine.schedule(10, seen.append, "h1")
    engine.schedule_discard(10, seen.append, "d1")
    engine.schedule(10, seen.append, "h2")
    engine.schedule_discard(5, seen.append, "d0")
    engine.run()
    assert seen == ["d0", "h1", "d1", "h2"]


def test_schedule_discard_rejects_negative_delay():
    with pytest.raises(SimulationError):
        Engine().schedule_discard(-1, lambda: None)


def test_pooled_events_are_recycled():
    engine = Engine()
    engine.schedule_discard(1, lambda: None)
    engine.run()
    assert len(engine._pool) == 1
    recycled = engine._pool[0]
    engine.schedule_discard(1, lambda: None)
    assert not engine._pool
    engine.run()
    assert engine._pool[0] is recycled


def test_public_schedule_handles_are_never_pooled():
    """schedule() returns a cancellable handle; recycling it would let a
    stale cancel() kill an unrelated future event."""
    engine = Engine()
    event = engine.schedule(1, lambda: None)
    engine.run()
    assert not engine._pool
    event.cancel()  # after execution: must be a no-op
    engine.schedule(1, lambda: None)
    assert engine.pending() == 1


def test_cancel_after_execution_does_not_corrupt_pending():
    engine = Engine()
    event = engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    engine.step()
    event.cancel()
    assert engine.pending() == 1
    assert engine.step() is True
    assert engine.pending() == 0


def test_compaction_keeps_live_events_and_order():
    engine = Engine()
    seen = []
    handles = [engine.schedule(i + 1, seen.append, i) for i in range(200)]
    for i, handle in enumerate(handles):
        if i % 2:
            handle.cancel()
    # Enough cancels to trigger compaction (cancelled > live, >= minimum).
    assert engine.pending() == 100
    engine.run()
    assert seen == [i for i in range(200) if i % 2 == 0]


def test_clock_queue_merges_in_time_seq_order():
    engine = Engine()
    seen = []
    cpu = object()
    engine.schedule(10, seen.append, "payload10")
    engine.schedule_clock(5, cpu, seen.append, "clock5")
    engine.schedule_clock(10, cpu, seen.append, "clock10-after")
    engine.schedule(10, seen.append, "payload10b")
    assert engine.pending() == 4
    engine.run()
    assert seen == ["clock5", "payload10", "clock10-after", "payload10b"]
    assert engine.now == 10


def test_next_payload_time_sees_past_other_cpus_clock_wakes():
    engine = Engine()
    cpu_a, cpu_b = object(), object()
    engine.schedule_clock(5, cpu_b, lambda: None)
    engine.schedule(40, lambda: None)
    # From cpu_a's view, cpu_b's self-clock tick at t=5 is invisible …
    assert engine.next_payload_time(cpu_a) == 40
    # … but its own clock entries and real events are not.
    assert engine.next_payload_time(cpu_b) == 5
    assert engine.next_event_time() == 5


def test_next_payload_time_skims_cancelled_heads():
    engine = Engine()
    cpu = object()
    event = engine.schedule(5, lambda: None)
    engine.schedule(30, lambda: None)
    event.cancel()
    assert engine.next_payload_time(cpu) == 30


# ---------------------------------------------------------------------------
# step_batch (the PR-8 batched dispatch sweep)
# ---------------------------------------------------------------------------

def _mixed_workload(engine, trace):
    """A scheduling mix that exercises every queue and nesting path."""
    cpu = object()

    def cascade(label, depth):
        trace.append((engine.now, label))
        if depth:
            # Same-timestamp zero-delay fan-out (the wire-delivery shape).
            engine.call_soon(cascade, f"{label}.s{depth}", depth - 1)
            engine.schedule_clock(0, cpu, trace.append,
                                  (engine.now, f"{label}.c{depth}"))

    engine.schedule(5, cascade, "a", 2)
    engine.schedule(5, trace.append, (5, "a2"))
    engine.schedule_clock(5, cpu, trace.append, (5, "aclock"))
    engine.schedule(12, cascade, "b", 3)
    doomed = engine.schedule(8, trace.append, (8, "never"))
    doomed.cancel()
    engine.call_soon(cascade, "zero", 1)
    return cpu


def test_step_batch_is_bit_identical_to_step():
    stepped, batched = [], []
    e1 = Engine()
    _mixed_workload(e1, stepped)
    while e1.step():
        pass
    e2 = Engine()
    _mixed_workload(e2, batched)
    total = 0
    while True:
        n = e2.step_batch(3)  # tiny limit: force many partial sweeps
        if not n:
            break
        total += n
    assert batched == stepped
    assert e2.events_executed == e1.events_executed == total
    assert e2.now == e1.now


def test_step_batch_respects_limit():
    engine = Engine()
    for i in range(10):
        engine.call_soon(lambda: None)
    assert engine.step_batch(4) == 4
    assert engine.events_executed == 4
    assert engine.step_batch(100) == 6


def test_step_batch_stop_flag_halts_between_events():
    engine = Engine()
    stop = [False]
    ran = []

    def flip():
        ran.append("flip")
        stop[0] = True

    engine.call_soon(flip)
    engine.call_soon(ran.append, "after")
    assert engine.step_batch(100, stop) == 1
    assert ran == ["flip"]
    stop[0] = False
    assert engine.step_batch(100, stop) == 1
    assert ran == ["flip", "after"]


def test_step_batch_same_time_clock_push_keeps_order():
    # A schedule_clock(0) from inside the sweep must fire in seq order
    # relative to zero-delay events queued after it.
    engine = Engine()
    cpu = object()
    trace = []

    def first():
        trace.append("first")
        engine.schedule_clock(0, cpu, trace.append, "clock0")
        engine.call_soon(trace.append, "soon-after-clock")

    engine.call_soon(first)
    engine.step_batch(10)
    assert trace == ["first", "clock0", "soon-after-clock"]


def test_per_cpu_clock_index_tracks_pops():
    engine = Engine()
    cpu_a, cpu_b = object(), object()
    engine.schedule_clock(5, cpu_a, lambda: None)
    engine.schedule_clock(7, cpu_a, lambda: None)
    engine.schedule_clock(6, cpu_b, lambda: None)
    engine.schedule(100, lambda: None)
    assert engine.next_payload_time(cpu_a) == 5
    assert engine.next_payload_time(cpu_b) == 6
    engine.step()  # fires cpu_a@5
    assert engine.next_payload_time(cpu_a) == 7
    engine.step()  # fires cpu_b@6
    assert engine.next_payload_time(cpu_b) == 100
    engine.step()  # fires cpu_a@7
    assert engine.next_payload_time(cpu_a) == 100
    engine.run()
    assert engine.now == 100


def test_run_uses_batches_and_matches_run_until():
    e1 = Engine()
    order1 = []
    _mixed_workload(e1, order1)
    e1.run()
    e2 = Engine()
    order2 = []
    _mixed_workload(e2, order2)
    while e2.step_batch(4096):
        pass
    assert order1 == order2
    assert e1.now == e2.now
