"""Soak test: sustained random traffic over a lossy fabric.

A fixed all-to-all traffic mix (sizes straddling the eager/rendezvous
switch point, all send modes) runs under a ~1% drop plan across several
injection seeds.  Every run must complete with zero MPI-level errors and
perfect per-pattern FIFO ordering: the reliable transport absorbs the
loss entirely.

The full sweep is slow, so it only runs when ``REPRO_SOAK=1`` is set —
CI runs it as a dedicated job; ``pytest -m ''`` locally skips it.  One
single-seed smoke case always runs so tier-1 keeps the path covered.
"""

import os
from collections import defaultdict

import pytest

from repro.cluster import MPIWorld
from repro.faults import lossy_plan
from repro.sim.engine import install_instrumentation
from tests.helpers import linear_cluster

SOAK = os.environ.get("REPRO_SOAK") == "1"

#: Sizes straddling the SCI switch point (8 KB): eager and rendezvous mix.
SIZES = (0, 4, 512, 8192, 9000, 60_000)
SOAK_SEEDS = tuple(range(1, 7))


def _schedule(nranks, nmessages, seed):
    """Deterministic pseudo-random message schedule (no global RNG)."""
    state = seed * 2654435761 % (2**32) or 1
    def rand(n):
        nonlocal state
        state = (state * 1103515245 + 12345) % (2**31)
        return state % n
    messages = []
    for mid in range(nmessages):
        src = rand(nranks)
        dst = (src + 1 + rand(nranks - 1)) % nranks
        tag = rand(3)
        size = SIZES[rand(len(SIZES))]
        mode = ("send", "isend", "ssend")[rand(3)]
        messages.append((src, dst, tag, size, mode, mid))
    return messages


def _run_lossy(seed, nranks=3, nmessages=18, drop_rate=0.01):
    config = linear_cluster(nranks, networks=("tcp", "sisci"))
    config.fault_plan = lossy_plan(drop_rate, seed=seed)
    world = MPIWorld(config)
    ins = install_instrumentation(world.engine)
    messages = _schedule(nranks, nmessages, seed)

    expected = defaultdict(list)
    for src, dst, tag, size, mode, mid in messages:
        expected[(src, dst, tag)].append((mid, size))

    received = defaultdict(list)

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        requests = [((src, tag), comm.irecv(source=src, tag=tag))
                    for (src, dst, tag) in expected
                    for _ in expected[(src, dst, tag)] if dst == me]
        pending = []
        for src, dst, tag, size, mode, mid in messages:
            if src != me:
                continue
            payload = (mid, size)
            if mode == "send":
                yield from comm.send(payload, dest=dst, tag=tag, size=size)
            elif mode == "ssend":
                yield from comm.ssend(payload, dest=dst, tag=tag, size=size)
            else:
                pending.append(comm.isend(payload, dest=dst, tag=tag,
                                          size=size))
        from repro.mpi import point2point as _p2p
        for (src, tag), request in requests:
            data, status = yield from _p2p.recv_wait(comm, request)
            received[(src, me, tag)].append((data, status.count))
        for request in pending:
            yield from request.wait()
        return None

    world.run(program)
    return expected, received, ins


def _check(expected, received):
    for key, sent in expected.items():
        got = received[key]
        assert len(got) == len(sent), f"lost messages on {key}"
        for (mid, size), (data, count) in zip(sent, got):
            expected_data = (mid, size) if size > 0 else None
            assert data == expected_data, f"reordering on {key}"
            assert count == size


def test_lossy_traffic_smoke():
    """Always-on single-seed case: 1% loss, full correctness."""
    expected, received, ins = _run_lossy(seed=3)
    _check(expected, received)
    assert ins.metrics.total("faults.dropped") > 0
    assert ins.metrics.total("failover.channels") == 0


@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the soak sweep")
@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_lossy_traffic_soak(seed):
    expected, received, ins = _run_lossy(seed, nranks=4, nmessages=30)
    _check(expected, received)
    assert ins.metrics.total("failover.channels") == 0
