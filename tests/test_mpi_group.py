"""Unit and property tests for MPI groups."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPIRankError
from repro.mpi.constants import UNDEFINED
from repro.mpi.group import Group, IDENT, SIMILAR, UNEQUAL


class TestGroupBasics:
    def test_size_and_lookup(self):
        g = Group([4, 2, 7])
        assert g.size == 3
        assert g.world_rank(0) == 4
        assert g.rank_of(7) == 2
        assert g.rank_of(99) == UNDEFINED

    def test_contains(self):
        g = Group([1, 3])
        assert 3 in g and 2 not in g

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(MPIRankError):
            Group([1, 1])

    def test_negative_rank_rejected(self):
        with pytest.raises(MPIRankError):
            Group([-1])

    def test_world_rank_out_of_range(self):
        with pytest.raises(MPIRankError):
            Group([0, 1]).world_rank(5)

    def test_compare(self):
        assert Group([0, 1]).compare(Group([0, 1])) == IDENT
        assert Group([0, 1]).compare(Group([1, 0])) == SIMILAR
        assert Group([0, 1]).compare(Group([0, 2])) == UNEQUAL

    def test_translate_ranks(self):
        a = Group([5, 6, 7])
        b = Group([7, 5])
        assert a.translate_ranks([0, 1, 2], b) == [1, UNDEFINED, 0]


class TestGroupSetOps:
    def test_union_keeps_order(self):
        assert Group([1, 2]).union(Group([3, 2])).world_ranks == (1, 2, 3)

    def test_intersection(self):
        assert Group([1, 2, 3]).intersection(Group([3, 1])).world_ranks == (1, 3)

    def test_difference(self):
        assert Group([1, 2, 3]).difference(Group([2])).world_ranks == (1, 3)

    def test_incl(self):
        assert Group([10, 11, 12]).incl([2, 0]).world_ranks == (12, 10)

    def test_excl(self):
        assert Group([10, 11, 12]).excl([1]).world_ranks == (10, 12)


ranks_lists = st.lists(st.integers(0, 30), min_size=0, max_size=12,
                       unique=True)


class TestGroupProperties:
    @given(ranks_lists, ranks_lists)
    @settings(max_examples=80, deadline=None)
    def test_union_contains_both(self, a, b):
        union = Group(a).union(Group(b))
        for r in a + b:
            assert r in union

    @given(ranks_lists, ranks_lists)
    @settings(max_examples=80, deadline=None)
    def test_intersection_subset_of_both(self, a, b):
        inter = Group(a).intersection(Group(b))
        for r in inter.world_ranks:
            assert r in a and r in b

    @given(ranks_lists, ranks_lists)
    @settings(max_examples=80, deadline=None)
    def test_difference_disjoint_from_other(self, a, b):
        diff = Group(a).difference(Group(b))
        assert not set(diff.world_ranks) & set(b)

    @given(ranks_lists.filter(lambda xs: len(xs) > 0))
    @settings(max_examples=80, deadline=None)
    def test_rank_roundtrip(self, ranks):
        g = Group(ranks)
        for i in range(g.size):
            assert g.rank_of(g.world_rank(i)) == i
