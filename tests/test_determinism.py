"""Determinism: a simulation is a pure function of its configuration.

The paper's measurements are reproducible runs on fixed hardware; the
simulator must be bit-for-bit repeatable so calibration and benchmarks
are stable.  These tests run the same workloads twice and require
identical traces, times and results.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.pingpong import mpi_pingpong
from repro.bench.raw_madeleine import raw_madeleine_pingpong
from repro.cluster import ClusterConfig, MPIWorld, NodeSpec, two_node_cluster
from repro.faults import lossy_plan
from repro.sim import CPU, Engine, charge, sleep, yield_cpu


def test_engine_replay_is_identical():
    def run():
        engine = Engine()
        order = []
        for delay in (30, 10, 10, 50, 0, 20):
            engine.schedule(delay, lambda d=delay: order.append((engine.now, d)))
        engine.run()
        return order

    assert run() == run()


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 3)),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_cpu_schedule_replay_property(spec):
    """Any mix of charges/sleeps/yields across tasks replays identically."""
    def run():
        engine = Engine()
        cpu = CPU(engine, switch_cost=17)
        trace = []

        def worker(label, steps):
            for duration, kind in steps:
                if kind == 0:
                    yield charge(duration)
                elif kind == 1:
                    yield sleep(duration)
                else:
                    yield yield_cpu()
                trace.append((label, engine.now))

        half = len(spec) // 2
        cpu.spawn(worker("a", spec[:half]))
        cpu.spawn(worker("b", spec[half:]))
        engine.run()
        return trace, engine.now, engine.events_executed

    assert run() == run()


def test_mpi_world_replay_is_identical():
    def run():
        world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))
        outputs = []

        def program(mpi):
            comm = mpi.comm_world
            value = yield from comm.allreduce(comm.rank + 1)
            data, status = yield from comm.sendrecv(
                comm.rank, dest=1 - comm.rank, sendtag=1,
                source=1 - comm.rank, recvtag=1)
            outputs.append((mpi.rank, value, data, mpi.process.engine.now))
            return value

        world.run(program)
        return outputs, world.engine.now, world.engine.events_executed

    assert run() == run()


def test_engine_rng_streams_are_seeded_and_namespaced():
    a, b = Engine(seed=5), Engine(seed=5)
    assert [a.rng("x").random() for _ in range(10)] == \
           [b.rng("x").random() for _ in range(10)]
    # Same engine, different namespaces: independent streams.
    c = Engine(seed=5)
    assert c.rng("x").random() != c.rng("y").random()
    # Different seeds diverge.
    assert Engine(seed=5).rng("x").random() != Engine(seed=6).rng("x").random()
    # The namespace returns the *same* generator on every call.
    d = Engine()
    assert d.rng("x") is d.rng("x")


def test_faulty_run_replays_identically():
    """Fault injection must not break the purity contract: same plan +
    same seed => identical traces, metrics and virtual time."""
    def run():
        nodes = [NodeSpec(f"n{i}", networks=("tcp", "sisci"))
                 for i in range(2)]
        world = MPIWorld(ClusterConfig(nodes=nodes,
                                       fault_plan=lossy_plan(0.08, seed=11)))
        ins = world.engine.enable_instrumentation()

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                for i in range(12):
                    yield from comm.send(i, dest=1, tag=0, size=12_000)
                return None
            out = []
            for _ in range(12):
                data, _ = yield from comm.recv(source=0, tag=0)
                out.append(data)
            return out

        results = world.run(program)
        records = [(r.time, r.category, tuple(sorted(r.fields.items())))
                   for r in ins.tracer.records]
        metrics = {name: ins.metrics.total(name)
                   for name in ("faults.dropped", "transport.retransmits",
                                "transport.acks", "transport.duplicates")}
        return results, records, metrics, world.engine.now

    first, second = run(), run()
    assert first[0] == second[0]       # MPI-level results
    assert first[2] == second[2]       # fault/transport metrics
    assert first[3] == second[3]       # virtual completion time
    assert first[1] == second[1]       # full trace, bit for bit
    assert first[2]["faults.dropped"] > 0  # the plan actually fired


def test_pingpong_measurements_are_stable():
    a = mpi_pingpong(1024, networks=("sisci",), reps=3)
    b = mpi_pingpong(1024, networks=("sisci",), reps=3)
    assert a.one_way_ns == b.one_way_ns
    assert a.mean_one_way_ns == b.mean_one_way_ns


def test_raw_madeleine_measurements_are_stable():
    a = raw_madeleine_pingpong("bip", 4096)
    b = raw_madeleine_pingpong("bip", 4096)
    assert a.one_way_ns == b.one_way_ns
