"""Determinism: a simulation is a pure function of its configuration.

The paper's measurements are reproducible runs on fixed hardware; the
simulator must be bit-for-bit repeatable so calibration and benchmarks
are stable.  These tests run the same workloads twice and require
identical traces, times and results.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.pingpong import mpi_pingpong
from repro.bench.raw_madeleine import raw_madeleine_pingpong
from repro.cluster import ClusterConfig, MPIWorld, NodeSpec, two_node_cluster
from repro.faults import lossy_plan
from repro.sim import CPU, Engine, charge, sleep, yield_cpu
from repro.sim.engine import install_instrumentation


def test_engine_replay_is_identical():
    def run():
        engine = Engine()
        order = []
        for delay in (30, 10, 10, 50, 0, 20):
            engine.schedule(delay, lambda d=delay: order.append((engine.now, d)))
        engine.run()
        return order

    assert run() == run()


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 3)),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_cpu_schedule_replay_property(spec):
    """Any mix of charges/sleeps/yields across tasks replays identically."""
    def run():
        engine = Engine()
        cpu = CPU(engine, switch_cost=17)
        trace = []

        def worker(label, steps):
            for duration, kind in steps:
                if kind == 0:
                    yield charge(duration)
                elif kind == 1:
                    yield sleep(duration)
                else:
                    yield yield_cpu()
                trace.append((label, engine.now))

        half = len(spec) // 2
        cpu.spawn(worker("a", spec[:half]))
        cpu.spawn(worker("b", spec[half:]))
        engine.run()
        return trace, engine.now, engine.events_executed

    assert run() == run()


def test_mpi_world_replay_is_identical():
    def run():
        world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))
        outputs = []

        def program(mpi):
            comm = mpi.comm_world
            value = yield from comm.allreduce(comm.rank + 1)
            data, status = yield from comm.sendrecv(
                comm.rank, dest=1 - comm.rank, sendtag=1,
                source=1 - comm.rank, recvtag=1)
            outputs.append((mpi.rank, value, data, mpi.process.engine.now))
            return value

        world.run(program)
        return outputs, world.engine.now, world.engine.events_executed

    assert run() == run()


def test_engine_rng_streams_are_seeded_and_namespaced():
    a, b = Engine(seed=5), Engine(seed=5)
    assert [a.rng("x").random() for _ in range(10)] == \
           [b.rng("x").random() for _ in range(10)]
    # Same engine, different namespaces: independent streams.
    c = Engine(seed=5)
    assert c.rng("x").random() != c.rng("y").random()
    # Different seeds diverge.
    assert Engine(seed=5).rng("x").random() != Engine(seed=6).rng("x").random()
    # The namespace returns the *same* generator on every call.
    d = Engine()
    assert d.rng("x") is d.rng("x")


def test_faulty_run_replays_identically():
    """Fault injection must not break the purity contract: same plan +
    same seed => identical traces, metrics and virtual time."""
    def run():
        nodes = [NodeSpec(f"n{i}", networks=("tcp", "sisci"))
                 for i in range(2)]
        world = MPIWorld(ClusterConfig(nodes=nodes,
                                       fault_plan=lossy_plan(0.08, seed=11)))
        ins = install_instrumentation(world.engine)

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                for i in range(12):
                    yield from comm.send(i, dest=1, tag=0, size=12_000)
                return None
            out = []
            for _ in range(12):
                data, _ = yield from comm.recv(source=0, tag=0)
                out.append(data)
            return out

        results = world.run(program)
        records = [(r.time, r.category, tuple(sorted(r.fields.items())))
                   for r in ins.tracer.records]
        metrics = {name: ins.metrics.total(name)
                   for name in ("faults.dropped", "transport.retransmits",
                                "transport.acks", "transport.duplicates")}
        return results, records, metrics, world.engine.now

    first, second = run(), run()
    assert first[0] == second[0]       # MPI-level results
    assert first[2] == second[2]       # fault/transport metrics
    assert first[3] == second[3]       # virtual completion time
    assert first[1] == second[1]       # full trace, bit for bit
    assert first[2]["faults.dropped"] > 0  # the plan actually fired


def test_pingpong_measurements_are_stable():
    a = mpi_pingpong(1024, networks=("sisci",), reps=3)
    b = mpi_pingpong(1024, networks=("sisci",), reps=3)
    assert a.one_way_ns == b.one_way_ns
    assert a.mean_one_way_ns == b.mean_one_way_ns


def test_raw_madeleine_measurements_are_stable():
    a = raw_madeleine_pingpong("bip", 4096)
    b = raw_madeleine_pingpong("bip", 4096)
    assert a.one_way_ns == b.one_way_ns


# ---------------------------------------------------------------------------
# Golden digests.
#
# The values below were captured *before* the simulator hot-path overhaul
# (idle-poll fast-forward, inline dispatch, event pooling) and pin the
# observable behaviour bit-for-bit: any scheduling optimization must leave
# virtual time, traces, per-task cpu_time and every metric untouched.
# ``Engine.events_executed`` is deliberately NOT pinned — it is a
# diagnostic, and the fast-forward legitimately shrinks it.
#
# If one of these fails, the change is NOT a refactor: it altered the
# simulated machine.  Do not re-capture the constants to make it pass
# unless the model itself intentionally changed (and say so in DESIGN.md).
# ---------------------------------------------------------------------------

GOLDEN_PINGPONG = {
    # (networks, size) -> (one_way_ns, mean_one_way_ns) with reps=3
    ("tcp", 0): (132281, 132281.0),
    ("tcp", 1024): (256816, 256816.0),
    ("tcp", 65536): (6567760, 6570760.0),
    ("sisci", 0): (12884, 12884.0),
    ("sisci", 1024): (39297, 39297.0),
    ("sisci", 65536): (902972, 902972.0),
    ("bip", 0): (15508, 15508.0),
    ("bip", 1024): (47174, 47174.0),
    ("bip", 65536): (646472, 646472.0),
}

GOLDEN_MULTIPROTOCOL = {
    # SCI traffic with an idle periodic TCP poller on the same CPUs —
    # the exact workload the idle-poll fast-forward targets (reps=5).
    4: (21013, 23338.1),
    16384: (272783, 274097.7),
}


def test_golden_pingpong_latencies():
    for (net, size), (one_way, mean) in GOLDEN_PINGPONG.items():
        result = mpi_pingpong(size, networks=(net,), reps=3)
        assert result.one_way_ns == one_way, (net, size)
        assert result.mean_one_way_ns == mean, (net, size)


def test_golden_multiprotocol_interference_latencies():
    for size, (one_way, mean) in GOLDEN_MULTIPROTOCOL.items():
        result = mpi_pingpong(size, networks=("sisci", "tcp"),
                              active_network="sisci", reps=5)
        assert result.one_way_ns == one_way, size
        assert result.mean_one_way_ns == mean, size


def test_golden_ch_p4_and_raw_madeleine():
    result = mpi_pingpong(1024, device="ch_p4", reps=3)
    assert (result.one_way_ns, result.mean_one_way_ns) == (267576, 267576.0)
    assert raw_madeleine_pingpong("tcp", 4096).one_way_ns == 509502
    assert raw_madeleine_pingpong("bip", 4096).one_way_ns == 55786


def test_golden_world_trace_cpu_time_and_poll_counters():
    """Full-fidelity pin: trace stream, per-task cpu_time, poll metrics.

    The poll counters prove the fast-forward's arithmetic bookkeeping is
    exact: skipped ticks must contribute to ``poll.wakeups`` /
    ``poll.idle_ns`` and to the poller's ``cpu_time`` precisely as if
    each tick had executed.
    """
    import hashlib

    world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))
    ins = install_instrumentation(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        value = yield from comm.allreduce(comm.rank + 1)
        data, _status = yield from comm.sendrecv(
            comm.rank, dest=1 - comm.rank, sendtag=1,
            source=1 - comm.rank, recvtag=1)
        return (value, data)

    results = world.run(program)
    assert results == [(3, 1), (3, 0)]
    assert world.engine.now == 111790

    digest = hashlib.sha256()
    for rec in ins.tracer.records:
        digest.update(repr((rec.time, rec.category,
                            tuple(sorted(rec.fields.items())))).encode())
    assert digest.hexdigest() == (
        "5463763048fc11475378b89c85d89f28191798a3f278a6f33b6c806ee0c73119")

    cpu_times = {}
    for env in world.envs:
        for task in env.process.runtime.cpu.tasks():
            cpu_times[task.name] = task.cpu_time
    assert cpu_times == {
        "node0.p0.isend#4": 8436,
        "node0.p0.poll.sisci@0#1": 18428,
        "node0.p0.poll.tcp@0#2": 24000,
        "node0.p0.rank0.main#3": 8436,
        "node1.p0.isend#4": 8436,
        "node1.p0.poll.sisci@1#1": 18428,
        "node1.p0.poll.tcp@1#2": 30000,
        "node1.p0.rank1.main#3": 8436,
    }
    assert ins.metrics.total("poll.wakeups") == 13
    assert ins.metrics.total("poll.idle_ns") == 129000


def test_golden_faulty_run_with_timer_cancellations():
    """Pin a lossy run: retransmit timers exercise event cancellation."""
    import hashlib

    nodes = [NodeSpec(f"n{i}", networks=("tcp", "sisci")) for i in range(2)]
    world = MPIWorld(ClusterConfig(nodes=nodes,
                                   fault_plan=lossy_plan(0.08, seed=11)))
    ins = install_instrumentation(world.engine)

    def program(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            for i in range(12):
                yield from comm.send(i, dest=1, tag=0, size=12_000)
            return None
        received = []
        for _ in range(12):
            data, _ = yield from comm.recv(source=0, tag=0)
            received.append(data)
        return received

    results = world.run(program)
    assert results == [None, list(range(12))]
    assert world.engine.now == 2639226

    digest = hashlib.sha256()
    for rec in ins.tracer.records:
        digest.update(repr((rec.time, rec.category,
                            tuple(sorted(rec.fields.items())))).encode())
    assert digest.hexdigest() == (
        "6bc5ab934b659bb75693704226b6f16954bbb761ce92f137b84fed3bec7975fd")
    assert {n: ins.metrics.total(n) for n in
            ("faults.dropped", "transport.retransmits",
             "transport.acks", "transport.duplicates")} == {
        "faults.dropped": 3,
        "transport.retransmits": 3,
        "transport.acks": 36,
        "transport.duplicates": 2,
    }
