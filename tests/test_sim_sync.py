"""Unit tests for simulated synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import CPU, Condition, Engine, Flag, Mailbox, Mutex, Semaphore
from repro.sim import charge, sleep, wait


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def cpu(engine):
    return CPU(engine)


class TestSemaphore:
    def test_initial_value_allows_immediate_acquire(self, engine, cpu):
        sem = Semaphore(2)
        passed = []

        def body(label):
            yield wait(sem)
            passed.append(label)

        cpu.spawn(body("a"))
        cpu.spawn(body("b"))
        engine.run()
        assert passed == ["a", "b"]
        assert sem.value == 0

    def test_blocks_until_release(self, engine, cpu):
        sem = Semaphore(0)
        events = []

        def waiter():
            yield wait(sem)
            events.append(("woke", engine.now))

        def releaser():
            yield sleep(500)
            sem.release()

        cpu.spawn(waiter)
        cpu.spawn(releaser)
        engine.run()
        assert events == [("woke", 500)]

    def test_fifo_wake_order(self, engine, cpu):
        sem = Semaphore(0)
        order = []

        def waiter(label):
            yield wait(sem)
            order.append(label)

        for label in "abc":
            cpu.spawn(waiter(label))

        def releaser():
            yield sleep(10)
            sem.release(count=3)

        cpu.spawn(releaser)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_release_without_waiters_banks_value(self, engine, cpu):
        sem = Semaphore(0)
        sem.release()
        done = []

        def body():
            yield wait(sem)
            done.append(True)

        cpu.spawn(body)
        engine.run()
        assert done == [True]

    def test_negative_initial_value_rejected(self):
        with pytest.raises(SimulationError):
            Semaphore(-1)

    def test_killed_waiter_is_skipped(self, engine, cpu):
        sem = Semaphore(0)
        woken = []

        def waiter(label):
            yield wait(sem)
            woken.append(label)

        victim = cpu.spawn(waiter("victim"))
        cpu.spawn(waiter("survivor"))
        engine.run()
        victim.kill()
        sem.release()
        engine.run()
        assert woken == ["survivor"]


class TestMutex:
    def test_mutual_exclusion(self, engine, cpu):
        mutex = Mutex()
        trace = []

        def worker(label):
            yield wait(mutex)
            trace.append((label, "in", engine.now))
            yield charge(100)
            trace.append((label, "out", engine.now))
            mutex.release()

        cpu.spawn(worker("a"))
        cpu.spawn(worker("b"))
        engine.run()
        assert trace == [
            ("a", "in", 0),
            ("a", "out", 100),
            ("b", "in", 100),
            ("b", "out", 200),
        ]

    def test_self_deadlock_detected(self, engine, cpu):
        mutex = Mutex(name="m")

        def body():
            yield wait(mutex)
            yield wait(mutex)

        cpu.spawn(body)
        with pytest.raises(SimulationError, match="self-deadlock"):
            engine.run()

    def test_release_unlocked_raises(self):
        with pytest.raises(SimulationError):
            Mutex().release()


class TestFlag:
    def test_wakes_all_waiters_with_value(self, engine, cpu):
        flag = Flag()
        seen = []

        def waiter(label):
            value = yield wait(flag)
            seen.append((label, value, engine.now))

        cpu.spawn(waiter("a"))
        cpu.spawn(waiter("b"))

        def setter():
            yield sleep(100)
            flag.set("go")

        cpu.spawn(setter)
        engine.run()
        assert seen == [("a", "go", 100), ("b", "go", 100)]

    def test_wait_on_set_flag_is_immediate(self, engine, cpu):
        flag = Flag()
        flag.set(7)
        seen = []

        def body():
            value = yield wait(flag)
            seen.append((value, engine.now))

        cpu.spawn(body)
        engine.run()
        assert seen == [(7, 0)]

    def test_set_is_idempotent_first_value_wins(self, engine, cpu):
        flag = Flag()
        flag.set("first")
        flag.set("second")
        assert flag.value == "first"


class TestMailbox:
    def test_fifo_delivery(self, engine, cpu):
        box = Mailbox()
        received = []

        def consumer():
            for _ in range(3):
                item = yield wait(box)
                received.append(item)

        cpu.spawn(consumer)
        box.post(1)
        box.post(2)
        box.post(3)
        engine.run()
        assert received == [1, 2, 3]

    def test_blocking_receive(self, engine, cpu):
        box = Mailbox()
        received = []

        def consumer():
            item = yield wait(box)
            received.append((item, engine.now))

        def producer():
            yield sleep(250)
            box.post("late")

        cpu.spawn(consumer)
        cpu.spawn(producer)
        engine.run()
        assert received == [("late", 250)]

    def test_len_and_peek(self):
        box = Mailbox()
        assert len(box) == 0
        assert box.peek() is None
        box.post("x")
        box.post("y")
        assert len(box) == 2
        assert box.peek() == "x"

    def test_multiple_consumers_fifo(self, engine, cpu):
        box = Mailbox()
        got = []

        def consumer(label):
            item = yield wait(box)
            got.append((label, item))

        cpu.spawn(consumer("a"))
        cpu.spawn(consumer("b"))
        engine.run()
        box.post(1)
        box.post(2)
        engine.run()
        assert got == [("a", 1), ("b", 2)]


class TestCondition:
    def test_wait_holding_releases_and_reacquires(self, engine, cpu):
        mutex = Mutex()
        cond = Condition()
        trace = []

        def waiter():
            yield wait(mutex)
            trace.append(("waiter-has-lock", engine.now))
            yield from cond.wait_holding(mutex)
            trace.append(("waiter-woke", engine.now))
            mutex.release()

        def signaller():
            yield sleep(10)
            yield wait(mutex)
            trace.append(("signaller-has-lock", engine.now))
            cond.notify()
            mutex.release()

        cpu.spawn(waiter)
        cpu.spawn(signaller)
        engine.run()
        assert trace == [
            ("waiter-has-lock", 0),
            ("signaller-has-lock", 10),
            ("waiter-woke", 10),
        ]

    def test_wait_holding_requires_lock(self, engine, cpu):
        mutex = Mutex()
        cond = Condition()

        def body():
            yield from cond.wait_holding(mutex)

        cpu.spawn(body)
        with pytest.raises(SimulationError, match="requires the mutex"):
            engine.run()

    def test_notify_all(self, engine, cpu):
        cond = Condition()
        woken = []

        def waiter(label):
            yield wait(cond)
            woken.append(label)

        for label in "abc":
            cpu.spawn(waiter(label))
        engine.run()
        cond.notify_all()
        engine.run()
        assert woken == ["a", "b", "c"]

    def test_notify_with_no_waiters_is_noop(self):
        Condition().notify()
        Condition().notify_all()
