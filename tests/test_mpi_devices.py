"""Tests for device selection, ch_self, smp_plug, ch_mad specifics."""

import pytest

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec, smp_node_cluster
from repro.errors import ConfigurationError
from repro.mpi.devices.ch_mad.switchpoints import SWITCH_POINTS, elect_threshold
from tests.helpers import run_ranks, run_world


class TestThresholdElection:
    def test_sci_always_wins(self):
        assert elect_threshold({"sisci"}) == 8 * 1024
        assert elect_threshold({"sisci", "tcp"}) == 8 * 1024
        assert elect_threshold({"sisci", "bip"}) == 8 * 1024
        assert elect_threshold({"sisci", "bip", "tcp"}) == 8 * 1024

    def test_most_performant_otherwise(self):
        assert elect_threshold({"bip", "tcp"}) == 7 * 1024
        assert elect_threshold({"tcp"}) == 64 * 1024
        assert elect_threshold({"bip"}) == 7 * 1024

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            elect_threshold(set())

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="quadrics"):
            elect_threshold({"quadrics"})

    def test_paper_values(self):
        # tcp/sisci/bip are the paper's Table 1 values; ib comes from the
        # MVAPICH-style rendezvous threshold of the RDMA extension.
        assert SWITCH_POINTS == {"tcp": 65536, "sisci": 8192, "bip": 7168,
                                 "ib": 16384}


class TestDeviceSelection:
    def test_locality_dispatch(self):
        """self -> ch_self, same node -> smp_plug, remote -> ch_mad."""
        def program(mpi):
            names = {}
            names["self"] = mpi.select_device(mpi.rank).name
            for other in range(mpi.size):
                if other == mpi.rank:
                    continue
                kind = ("same-node" if mpi.node_of_rank[other] == mpi.node
                        else "remote")
                names[kind] = mpi.select_device(other).name
            return names
            yield  # pragma: no cover

        results = run_world(program, smp_node_cluster(nodes=2,
                                                      processes_per_node=2))
        for names in results:
            assert names["self"] == "ch_self"
            assert names["same-node"] == "smp_plug"
            assert names["remote"] == "ch_mad"


class TestChSelf:
    def test_self_send_recv(self):
        def program(mpi):
            comm = mpi.comm_world
            req = comm.isend([1, 2, 3], dest=comm.rank, tag=5)
            data, status = yield from comm.recv(source=comm.rank, tag=5)
            yield from req.wait()
            return (data, status.source)

        results = run_ranks(program)
        assert results[0] == ([1, 2, 3], 0)
        assert results[1] == ([1, 2, 3], 1)

    def test_blocking_self_send_buffers(self):
        """A small blocking self-send completes before the recv (eager)."""
        def program(mpi):
            comm = mpi.comm_world
            yield from comm.send("loopback", dest=comm.rank)
            data, _ = yield from comm.recv(source=comm.rank)
            return data

        assert run_ranks(program) == ["loopback", "loopback"]


class TestSmpPlug:
    def test_intra_node_exchange(self):
        def program(mpi):
            comm = mpi.comm_world
            # Ranks 0,1 on node0; 2,3 on node1.
            buddy = comm.rank ^ 1
            data, _ = yield from comm.sendrecv(comm.rank, dest=buddy,
                                               sendtag=1, source=buddy,
                                               recvtag=1)
            return data

        results = run_world(program, smp_node_cluster(nodes=2,
                                                      processes_per_node=2))
        assert results == [1, 0, 3, 2]

    def test_smp_rendezvous_large_message(self):
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"", dest=1, size=200_000)
                return None
            _, status = yield from comm.recv(source=0)
            return status.count

        config = smp_node_cluster(nodes=1, processes_per_node=2)
        # Single node world: drop inter-node requirement.
        results = run_world(program, config)
        assert results[1] == 200_000

    def test_smp_faster_than_network(self):
        """Intra-node latency must be far below inter-node latency."""
        def program(mpi):
            from repro.sim.coroutines import now
            comm = mpi.comm_world
            if comm.rank == 0:
                t0 = yield now()
                yield from comm.send(b"x", dest=1, tag=1)  # same node
                yield from comm.recv(source=1, tag=1)
                t1 = yield now()
                yield from comm.send(b"x", dest=2, tag=2)  # other node
                yield from comm.recv(source=2, tag=2)
                t2 = yield now()
                return (t1 - t0, t2 - t1)
            if comm.rank == 1:
                yield from comm.recv(source=0, tag=1)
                yield from comm.send(b"x", dest=0, tag=1)
            elif comm.rank == 2:
                yield from comm.recv(source=0, tag=2)
                yield from comm.send(b"x", dest=0, tag=2)
            return None

        results = run_world(program, smp_node_cluster(nodes=2,
                                                      processes_per_node=2))
        smp_rtt, net_rtt = results[0]
        assert smp_rtt < net_rtt / 2


class TestChMadChannelSelection:
    def test_prefers_fastest_common_network(self):
        def program(mpi):
            comm = mpi.comm_world
            port = mpi.inter_device.select_port(1 - mpi.rank)
            return port.channel.protocol
            yield  # pragma: no cover

        results = run_ranks(program, networks=("tcp", "sisci"))
        assert results == ["sisci", "sisci"]

        results = run_ranks(program, networks=("tcp", "bip", "sisci"))
        assert results == ["bip", "bip"]

    def test_heterogeneous_fallback_to_common_network(self):
        """Cluster-of-clusters: SCI island + BIP island joined by TCP."""
        nodes = [
            NodeSpec("sci0", networks=("tcp", "sisci")),
            NodeSpec("sci1", networks=("tcp", "sisci")),
            NodeSpec("myri0", networks=("tcp", "bip")),
            NodeSpec("myri1", networks=("tcp", "bip")),
        ]
        config = ClusterConfig(nodes=nodes, device="ch_mad")

        def program(mpi):
            device = mpi.inter_device
            chosen = {}
            for other in range(mpi.size):
                if other != mpi.rank:
                    chosen[other] = device.select_port(other).channel.protocol
            return chosen
            yield  # pragma: no cover

        results = run_world(program, config)
        assert results[0] == {1: "sisci", 2: "tcp", 3: "tcp"}
        assert results[2] == {0: "tcp", 1: "tcp", 3: "bip"}

    def test_no_common_network_raises(self):
        nodes = [
            NodeSpec("a", networks=("sisci",)),
            NodeSpec("b", networks=("bip",)),
        ]
        config = ClusterConfig(nodes=nodes, device="ch_mad")

        def program(mpi):
            # Each protocol has a single member, so no Madeleine channel
            # could be formed and ch_mad was not installed at all.
            if mpi.rank == 0:
                with pytest.raises(ConfigurationError,
                                   match="no inter-node device"):
                    yield from mpi.comm_world.send(b"x", dest=1)
            return None
            yield  # pragma: no cover

        run_world(program, config)

    def test_threshold_is_elected_single_value(self):
        def program(mpi):
            return mpi.inter_device.eager_threshold
            yield  # pragma: no cover

        assert run_ranks(program, networks=("sisci", "tcp")) == [8192, 8192]
        assert run_ranks(program, networks=("bip", "tcp")) == [7168, 7168]

    def test_per_network_threshold_ablation(self):
        nodes = [NodeSpec(f"n{i}", networks=("sisci", "tcp")) for i in range(2)]
        config = ClusterConfig(nodes=nodes, device="ch_mad",
                               per_network_thresholds=True)

        def program(mpi):
            return mpi.inter_device.threshold(1 - mpi.rank)
            yield  # pragma: no cover

        # Traffic rides SCI (preferred), so its own 8 KB applies; but the
        # ablation uses the per-network value, not the elected one.
        assert run_world(program, config) == [8192, 8192]

    def test_eager_messages_have_no_body_when_empty(self):
        """0-byte messages skip the body pack: cheaper than 4-byte ones."""
        from repro.bench.pingpong import mpi_pingpong
        zero = mpi_pingpong(0, networks=("sisci",), reps=3)
        four = mpi_pingpong(4, networks=("sisci",), reps=3)
        # The 4-byte message pays the extra pack/unpack pair (~6.5 us on
        # SCI) that the body-less 0-byte message skips (Table 2 gap).
        assert four.one_way_ns - zero.one_way_ns > 4_000


class TestMultiProtocolSession:
    def test_one_polling_thread_per_channel(self):
        def program(mpi):
            device = mpi.inter_device
            return sorted(p.port.channel.protocol for p in device._pollers)
            yield  # pragma: no cover

        results = run_ranks(program, networks=("sisci", "tcp"))
        assert results[0] == ["sisci", "tcp"]

    def test_traffic_flows_on_both_networks_simultaneously(self):
        def program(mpi):
            comm = mpi.comm_world
            device = mpi.inter_device
            other = 1 - comm.rank
            if comm.rank == 0:
                # Force one message over each network.
                device.preference = ("sisci", "tcp")
                yield from comm.send("on-sci", dest=1, tag=1)
                device.preference = ("tcp", "sisci")
                yield from comm.send("on-tcp", dest=1, tag=2)
                return None
            a, _ = yield from comm.recv(source=0, tag=1)
            b, _ = yield from comm.recv(source=0, tag=2)
            stats = {proto: port.endpoint.adapter.messages_received
                     for proto, port in mpi.inter_device.ports.items()}
            return (a, b, stats["sisci"] > 0, stats["tcp"] > 0)

        results = run_ranks(program, networks=("sisci", "tcp"))
        assert results[1] == ("on-sci", "on-tcp", True, True)
