"""Integration tests for collective operations across world sizes."""

import numpy as np
import pytest

from repro.mpi.reduce_ops import MAX, MAXLOC, MIN, MINLOC, PROD, SUM, user_op
from tests.helpers import run_ranks

SIZES = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("nranks", SIZES)
class TestBarrier:
    def test_barrier_synchronizes(self, nranks):
        def program(mpi):
            from repro.sim.coroutines import now, sleep
            from repro.units import us
            comm = mpi.comm_world
            # Stagger arrivals; everyone must leave after the last arrival.
            yield sleep(us(100) * comm.rank)
            yield from comm.barrier()
            t = yield now()
            return t

        times = run_ranks(program, nranks=nranks)
        last_arrival = (nranks - 1) * 100_000
        assert all(t >= last_arrival for t in times)


@pytest.mark.parametrize("nranks", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
class TestBcast:
    def test_bcast_object(self, nranks, root):
        root = nranks - 1 if root == "last" else root

        def program(mpi):
            comm = mpi.comm_world
            obj = {"payload": 42} if comm.rank == root else None
            result = yield from comm.bcast(obj, root=root)
            return result

        assert run_ranks(program, nranks=nranks) == [{"payload": 42}] * nranks


@pytest.mark.parametrize("nranks", SIZES)
class TestReduce:
    def test_reduce_sum(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from comm.reduce(comm.rank + 1, op=SUM, root=0)
            return result

        results = run_ranks(program, nranks=nranks)
        assert results[0] == sum(range(1, nranks + 1))
        assert all(r is None for r in results[1:])

    def test_reduce_noncommutative_preserves_rank_order(self, nranks):
        concat = user_op(lambda a, b: a + b, commutative=False)

        def program(mpi):
            comm = mpi.comm_world
            result = yield from comm.reduce([comm.rank], op=concat, root=0)
            return result

        results = run_ranks(program, nranks=nranks)
        assert results[0] == list(range(nranks))

    def test_allreduce_max(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            value = (comm.rank * 7) % 5
            result = yield from comm.allreduce(value, op=MAX)
            return result

        expected = max((r * 7) % 5 for r in range(nranks))
        assert run_ranks(program, nranks=nranks) == [expected] * nranks

    def test_allreduce_minloc(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            value = abs(comm.rank - 2)
            result = yield from comm.allreduce((value, comm.rank), op=MINLOC)
            return result

        values = [(abs(r - 2), r) for r in range(nranks)]
        expected = min(values)
        assert run_ranks(program, nranks=nranks) == [expected] * nranks


@pytest.mark.parametrize("nranks", SIZES)
class TestGatherScatter:
    def test_gather(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from comm.gather(comm.rank ** 2, root=0)
            return result

        results = run_ranks(program, nranks=nranks)
        assert results[0] == [r ** 2 for r in range(nranks)]

    def test_scatter(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            items = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            result = yield from comm.scatter(items, root=0)
            return result

        assert run_ranks(program, nranks=nranks) == [f"item{r}" for r in range(nranks)]

    def test_allgather(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from comm.allgather(comm.rank * 10)
            return result

        expected = [r * 10 for r in range(nranks)]
        assert run_ranks(program, nranks=nranks) == [expected] * nranks

    def test_alltoall(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            outgoing = [(comm.rank, dest) for dest in range(comm.size)]
            result = yield from comm.alltoall(outgoing)
            return result

        results = run_ranks(program, nranks=nranks)
        for me, got in enumerate(results):
            assert got == [(src, me) for src in range(nranks)]


@pytest.mark.parametrize("nranks", SIZES)
class TestScan:
    def test_inclusive_scan(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from comm.scan(comm.rank + 1, op=SUM)
            return result

        expected = [sum(range(1, r + 2)) for r in range(nranks)]
        assert run_ranks(program, nranks=nranks) == expected

    def test_exclusive_scan(self, nranks):
        def program(mpi):
            comm = mpi.comm_world
            result = yield from comm.exscan(comm.rank + 1, op=SUM)
            return result

        results = run_ranks(program, nranks=nranks)
        assert results[0] is None
        for r in range(1, nranks):
            assert results[r] == sum(range(1, r + 1))


class TestBufferCollectives:
    def test_Bcast(self):
        def program(mpi):
            comm = mpi.comm_world
            arr = np.zeros(16, dtype=np.float64)
            if comm.rank == 0:
                arr[:] = np.arange(16)
            yield from comm.Bcast(arr, root=0)
            return float(arr.sum())

        assert run_ranks(program, nranks=4) == [120.0] * 4

    def test_Reduce(self):
        def program(mpi):
            comm = mpi.comm_world
            send = np.full(8, comm.rank + 1, dtype=np.int64)
            recv = np.zeros(8, dtype=np.int64) if comm.rank == 0 else None
            yield from comm.Reduce(send, recv, op=SUM, root=0)
            return None if recv is None else int(recv[0])

        results = run_ranks(program, nranks=3)
        assert results[0] == 6

    def test_Allreduce_elementwise(self):
        def program(mpi):
            comm = mpi.comm_world
            send = np.arange(4, dtype=np.float64) * (comm.rank + 1)
            recv = np.zeros(4, dtype=np.float64)
            yield from comm.Allreduce(send, recv, op=SUM)
            return recv.tolist()

        results = run_ranks(program, nranks=3)
        expected = (np.arange(4) * 6.0).tolist()
        assert all(r == expected for r in results)

    def test_Gather_Scatter(self):
        def program(mpi):
            comm = mpi.comm_world
            send = np.full(4, comm.rank, dtype=np.int32)
            recv = (np.zeros(4 * comm.size, dtype=np.int32)
                    if comm.rank == 0 else None)
            yield from comm.Gather(send, recv, root=0)
            back = np.zeros(4, dtype=np.int32)
            yield from comm.Scatter(recv, back, root=0)
            return back.tolist()

        results = run_ranks(program, nranks=3)
        for r, got in enumerate(results):
            assert got == [r] * 4

    def test_Allgather(self):
        def program(mpi):
            comm = mpi.comm_world
            send = np.array([comm.rank], dtype=np.int64)
            recv = np.zeros(comm.size, dtype=np.int64)
            yield from comm.Allgather(send, recv)
            return recv.tolist()

        results = run_ranks(program, nranks=4)
        assert all(r == [0, 1, 2, 3] for r in results)

    def test_matvec_allgather_idiom(self):
        """The mpi4py tutorial's parallel matrix-vector product."""
        def program(mpi):
            comm = mpi.comm_world
            p = comm.size
            m = 3  # local rows
            n = m * p
            A = np.arange(m * n, dtype=np.float64).reshape(m, n) + comm.rank
            x = np.full(m, comm.rank + 1.0)
            xg = np.zeros(n, dtype=np.float64)
            yield from comm.Allgather(x, xg)
            y = A @ xg
            return y.tolist()

        results = run_ranks(program, nranks=3)
        # Verify against a serial computation.
        p, m = 3, 3
        n = m * p
        xg = np.concatenate([np.full(m, r + 1.0) for r in range(p)])
        for r in range(p):
            A = np.arange(m * n, dtype=np.float64).reshape(m, n) + r
            assert results[r] == (A @ xg).tolist()


class TestCollectiveSequences:
    def test_back_to_back_collectives_do_not_cross_match(self):
        def program(mpi):
            comm = mpi.comm_world
            a = yield from comm.bcast(comm.rank if comm.rank == 0 else None, 0)
            b = yield from comm.bcast(comm.rank if comm.rank == 1 else None, 1)
            c = yield from comm.allreduce(1, op=SUM)
            yield from comm.barrier()
            d = yield from comm.gather(comm.rank, root=0)
            return (a, b, c, d)

        results = run_ranks(program, nranks=4)
        for rank, (a, b, c, d) in enumerate(results):
            assert a == 0 and b == 1 and c == 4
        assert results[0][3] == [0, 1, 2, 3]

    def test_collectives_do_not_match_user_receives(self):
        """Collective traffic lives in the hidden context."""
        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send("user", dest=1, tag=1)
                yield from comm.barrier()
                return None
            yield from comm.barrier()
            data, _ = yield from comm.recv(source=0, tag=1)
            return data

        assert run_ranks(program)[1] == "user"
