"""Tests for cluster configuration, construction and the MPIWorld runner."""

import pytest

from repro.cluster import (
    ClusterConfig,
    MPIWorld,
    NodeSpec,
    cluster_of_clusters,
    paper_cluster,
    smp_node_cluster,
    two_node_cluster,
)
from repro.errors import ConfigurationError, DeadlockError
from repro.mpi.devices.ch_p4 import ChP4Device
from repro.mpi.devices.ch_mad import ChMadDevice


class TestNodeSpec:
    def test_defaults(self):
        node = NodeSpec("n")
        assert node.networks == ("tcp",)
        assert node.processes == 1

    def test_zero_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeSpec("n", processes=0)

    def test_duplicate_networks_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeSpec("n", networks=("tcp", "tcp"))


class TestClusterConfig:
    def test_world_size_and_rank_mapping(self):
        config = ClusterConfig(nodes=[
            NodeSpec("a", processes=2),
            NodeSpec("b", processes=1),
            NodeSpec("c", processes=3),
        ])
        assert config.world_size == 6
        assert config.node_of_rank() == [0, 0, 1, 2, 2, 2]

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(nodes=[NodeSpec("a")], device="ch_quantum")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(nodes=[])

    def test_ch_p4_requires_tcp(self):
        with pytest.raises(ConfigurationError, match="TCP"):
            ClusterConfig(nodes=[NodeSpec("a", networks=("sisci",)),
                                 NodeSpec("b", networks=("sisci",))],
                          device="ch_p4")


class TestCannedConfigs:
    def test_two_node_active_network_validation(self):
        with pytest.raises(ValueError):
            two_node_cluster(networks=("sisci",), active_network="bip")

    def test_two_node_preference_ordering(self):
        config = two_node_cluster(networks=("sisci", "tcp"),
                                  active_network="tcp")
        assert config.channel_preference == ("tcp", "sisci")

    def test_paper_cluster_shape(self):
        config = paper_cluster(nodes=3, processes_per_node=2)
        assert config.world_size == 6

    def test_smp_cluster(self):
        config = smp_node_cluster(nodes=2, processes_per_node=2)
        assert config.world_size == 4
        assert config.node_of_rank() == [0, 0, 1, 1]

    def test_cluster_of_clusters_boards(self):
        config = cluster_of_clusters(sci_nodes=2, myrinet_nodes=1)
        networks = [set(n.networks) for n in config.nodes]
        assert networks == [{"tcp", "sisci"}, {"tcp", "sisci"},
                            {"tcp", "bip"}]

    def test_cluster_of_clusters_without_ethernet(self):
        config = cluster_of_clusters(ethernet_everywhere=False)
        assert all("tcp" not in n.networks for n in config.nodes)


class TestMPIWorldConstruction:
    def test_devices_installed_by_locality(self):
        world = MPIWorld(smp_node_cluster(nodes=2, processes_per_node=2))
        for env in world.envs:
            assert env.self_device is not None
            assert env.smp_device is not None
            assert isinstance(env.inter_device, ChMadDevice)

    def test_single_process_nodes_have_no_smp_device(self):
        world = MPIWorld(two_node_cluster())
        for env in world.envs:
            assert env.smp_device is None

    def test_single_node_world_has_no_inter_device(self):
        world = MPIWorld(smp_node_cluster(nodes=1, processes_per_node=2))
        for env in world.envs:
            assert env.inter_device is None

    def test_ch_p4_world(self):
        world = MPIWorld(two_node_cluster(networks=("tcp",), device="ch_p4"))
        for env in world.envs:
            assert isinstance(env.inter_device, ChP4Device)
        # ch_p4 devices form a full mesh over ONE shared world map
        # (a private copy per device was O(ranks^2) memory); self-sends
        # never consult it — device selection routes them to ch_self.
        first = world.envs[0].inter_device
        assert first._peers.keys() == {0, 1}
        assert all(env.inter_device._peers is first._peers
                   for env in world.envs)
        with pytest.raises(ConfigurationError):
            first._peer(0)
        assert first._peer(1) is world.envs[1].inter_device

    def test_one_madeleine_channel_per_protocol(self):
        world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))
        assert set(world.session.channels) == {"sisci", "tcp"}

    def test_comm_world_shape(self):
        world = MPIWorld(paper_cluster(nodes=3))
        for i, env in enumerate(world.envs):
            assert env.comm_world.rank == i
            assert env.comm_world.size == 3


class TestMPIWorldRun:
    def test_results_in_rank_order(self):
        world = MPIWorld(paper_cluster(nodes=3))

        def program(mpi):
            yield from mpi.comm_world.barrier()
            return mpi.rank * 2

        assert world.run(program) == [0, 2, 4]

    def test_exception_in_program_propagates(self):
        world = MPIWorld(two_node_cluster())

        def program(mpi):
            yield from mpi.comm_world.barrier()
            if mpi.rank == 1:
                raise RuntimeError("application bug")

        with pytest.raises(RuntimeError, match="application bug"):
            world.run(program)

    def test_max_events_deadlock_guard(self):
        world = MPIWorld(two_node_cluster(networks=("tcp",)))

        def program(mpi):
            # TCP pollers tick forever; the mains never finish.
            yield from mpi.comm_world.recv(source=1 - mpi.rank)

        with pytest.raises(DeadlockError, match="max_events"):
            world.run(program, max_events=50_000)

    def test_shutdown_is_idempotent(self):
        world = MPIWorld(two_node_cluster())

        def program(mpi):
            yield from mpi.comm_world.barrier()

        world.run(program)
        world.shutdown()
        world.shutdown()

    def test_polling_threads_stopped_after_run(self):
        world = MPIWorld(two_node_cluster(networks=("sisci", "tcp")))

        def program(mpi):
            yield from mpi.comm_world.barrier()

        world.run(program)
        for env in world.envs:
            assert env.process.runtime.live_threads() == []
