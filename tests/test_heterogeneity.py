"""Tests for mixed-endian clusters (the ADI heterogeneity box, Fig. 1)."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec
from repro.errors import ConfigurationError


def mixed_cluster(conversion=True):
    return ClusterConfig(nodes=[
        NodeSpec("intel", networks=("sisci",), byte_order="little"),
        NodeSpec("sparc", networks=("sisci",), byte_order="big"),
    ], device="ch_mad", heterogeneity_conversion=conversion)


def exchange_program(mpi):
    comm = mpi.comm_world
    values = np.array([1.0, 2.0, 3.0], dtype=np.float64)
    if comm.rank == 0:
        yield from comm.send(values, dest=1, tag=1)
        data, _ = yield from comm.recv(source=1, tag=2)
        return data
    data, _ = yield from comm.recv(source=0, tag=1)
    yield from comm.send(values * 10, dest=0, tag=2)
    return data


class TestValidation:
    def test_bad_byte_order_rejected(self):
        with pytest.raises(ConfigurationError, match="byte_order"):
            NodeSpec("n", byte_order="middle")


class TestConversion:
    def test_mixed_endian_values_survive(self):
        world = MPIWorld(mixed_cluster())
        results = world.run(exchange_program)
        assert np.array_equal(results[0], [10.0, 20.0, 30.0])
        assert np.array_equal(results[1], [1.0, 2.0, 3.0])
        # Both directions crossed a representation boundary.
        assert world.envs[0].progress.conversions == 1
        assert world.envs[1].progress.conversions == 1

    def test_same_endian_pays_nothing(self):
        config = ClusterConfig(nodes=[
            NodeSpec("a", networks=("sisci",)),
            NodeSpec("b", networks=("sisci",)),
        ])
        world = MPIWorld(config)
        world.run(exchange_program)
        assert world.envs[0].progress.conversions == 0
        assert world.envs[1].progress.conversions == 0

    def test_conversion_costs_time(self):
        def timed(config):
            world = MPIWorld(config)

            def program(mpi):
                comm = mpi.comm_world
                payload = np.zeros(8192, dtype=np.float64)
                if comm.rank == 0:
                    yield from comm.send(payload, dest=1, tag=1)
                else:
                    yield from comm.recv(source=0, tag=1)

            world.run(program)
            return world.engine.now

        same = timed(ClusterConfig(nodes=[
            NodeSpec("a", networks=("sisci",)),
            NodeSpec("b", networks=("sisci",))]))
        mixed = timed(mixed_cluster())
        assert mixed > same, "conversion must cost simulated time"

    def test_rendezvous_path_converts_too(self):
        world = MPIWorld(mixed_cluster())

        def program(mpi):
            comm = mpi.comm_world
            payload = np.arange(20_000, dtype=np.float64)  # rendezvous
            if comm.rank == 0:
                yield from comm.send(payload, dest=1, tag=1)
                return None
            data, _ = yield from comm.recv(source=0, tag=1)
            return float(data[19_999])

        results = world.run(program)
        assert results[1] == 19_999.0
        assert world.envs[1].progress.conversions == 1

    def test_bytes_payloads_pass_through(self):
        world = MPIWorld(mixed_cluster())

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(b"\x01\x02", dest=1, tag=1)
                return None
            data, _ = yield from comm.recv(source=0, tag=1)
            return data

        results = world.run(program)
        assert results[1] == b"\x01\x02"
        assert world.envs[1].progress.conversions == 0


class TestConversionAblation:
    def test_without_conversion_numbers_are_garbage(self):
        world = MPIWorld(mixed_cluster(conversion=False))

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(np.array([1.0]), dest=1, tag=1)
                return None
            data, _ = yield from comm.recv(source=0, tag=1)
            return float(data[0])

        results = world.run(program)
        # The raw byteswap of IEEE-754 1.0 is NOT 1.0.
        assert results[1] != 1.0
        assert results[1] == float(np.array([1.0]).byteswap()[0])

    def test_single_byte_dtypes_are_immune(self):
        world = MPIWorld(mixed_cluster(conversion=False))

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(np.array([7], dtype=np.uint8),
                                     dest=1, tag=1)
                return None
            data, _ = yield from comm.recv(source=0, tag=1)
            return int(data[0])

        assert world.run(program)[1] == 7


class TestMixedEndianCollectives:
    def test_allreduce_across_representations(self):
        config = ClusterConfig(nodes=[
            NodeSpec("a", networks=("sisci",), byte_order="little"),
            NodeSpec("b", networks=("sisci",), byte_order="big"),
            NodeSpec("c", networks=("sisci",), byte_order="little"),
        ])
        world = MPIWorld(config)

        def program(mpi):
            comm = mpi.comm_world
            send = np.full(4, float(comm.rank + 1))
            recv = np.zeros(4)
            yield from comm.Allreduce(send, recv)
            return recv.tolist()

        results = world.run(program)
        assert all(r == [6.0] * 4 for r in results)
