"""Ring buffer semantics, plus the honest ring-vs-deque micro-benchmark."""

import collections
import time

import pytest

from repro.sim.ring import Ring


class TestRingSemantics:
    def test_fifo_order(self):
        ring = Ring(8)
        for i in range(5):
            assert ring.push(i)
        assert [ring.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_rounds_up_to_power_of_two(self):
        assert Ring(1).capacity == 1
        assert Ring(3).capacity == 4
        assert Ring(64).capacity == 64
        assert Ring(65).capacity == 128

    def test_push_to_full_drops_and_reports(self):
        ring = Ring(2)
        assert ring.push("a") and ring.push("b")
        assert not ring.push("c")  # dropped, free-list semantics
        assert len(ring) == 2
        assert ring.pop() == "a"
        assert ring.push("d")  # room again
        assert [ring.pop(), ring.pop()] == ["b", "d"]

    def test_pop_empty_raises(self):
        ring = Ring(4)
        with pytest.raises(IndexError):
            ring.pop()

    def test_bool_and_len(self):
        ring = Ring(4)
        assert not ring and len(ring) == 0
        ring.push(1)
        assert ring and len(ring) == 1

    def test_wraparound_many_cycles(self):
        ring = Ring(4)
        for cycle in range(25):  # head laps the slot list many times
            for i in range(3):
                ring.push((cycle, i))
            assert [ring.pop() for _ in range(3)] == [(cycle, i)
                                                      for i in range(3)]
        assert not ring

    def test_pop_drops_slot_reference(self):
        ring = Ring(2)
        marker = object()
        ring.push(marker)
        ring.pop()
        assert all(slot is not marker for slot in ring._slots)

    def test_clear_empties_and_drops_references(self):
        ring = Ring(8)
        for i in range(6):
            ring.push(object())
        ring.clear()
        assert len(ring) == 0
        assert all(slot is None for slot in ring._slots)
        assert ring.push("fresh") and ring.pop() == "fresh"

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Ring(0)


def test_deque_beats_python_ring_on_fifo_churn():
    """The honesty check behind ring.py's module docstring.

    The engine's zero-delay queue and the mailboxes stay on
    ``collections.deque`` because deque already *is* a C ring buffer;
    this guards the documented rationale by verifying deque is not
    slower — if a CPython release ever flips the balance, this fails
    and the hot queues should be revisited.
    """
    N = 20_000
    ring = Ring(64)
    deque = collections.deque()

    start = time.perf_counter()
    for i in range(N):
        ring.push(i)
        ring.pop()
    ring_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(N):
        deque.append(i)
        deque.popleft()
    deque_seconds = time.perf_counter() - start

    # Wide margin: only fail if deque became dramatically slower than
    # the Python-level ring (it is typically ~2x *faster*).
    assert deque_seconds < ring_seconds * 3, (
        f"deque {deque_seconds:.4f}s vs ring {ring_seconds:.4f}s: "
        "revisit the deque-stays decision in repro/sim/ring.py")
