"""Property-based integration test: random traffic schedules.

Hypothesis generates arbitrary message schedules (sources, destinations,
tags, sizes spanning eager and rendezvous, send modes, posting orders,
timing jitter) and the test checks the MPI ordering contract on the full
simulated stack: for every (source, destination, tag) triple, values
arrive in the order they were sent, regardless of how receives were
posted relative to arrivals.
"""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterConfig, MPIWorld
from repro.faults import lossy_plan
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.sim.engine import install_checker
from tests.helpers import linear_cluster

#: Sizes straddling the SCI switch point (8 KB): eager and rendezvous mix.
SIZES = (0, 4, 512, 8192, 9000, 60_000)


@st.composite
def traffic_schedules(draw):
    nranks = draw(st.integers(2, 4))
    nmessages = draw(st.integers(1, 14))
    messages = []
    for i in range(nmessages):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 1).filter(lambda d: d != src))
        tag = draw(st.integers(0, 2))
        size = draw(st.sampled_from(SIZES))
        mode = draw(st.sampled_from(["send", "isend", "ssend"]))
        messages.append((src, dst, tag, size, mode, i))
    # Per-receiver pattern posting order: a permutation seed.
    post_seed = draw(st.integers(0, 10**6))
    delays = draw(st.lists(st.integers(0, 200), min_size=nranks,
                           max_size=nranks))
    return nranks, messages, post_seed, delays


def shuffled(items, seed):
    items = list(items)
    # Deterministic Fisher-Yates from the seed (no global RNG state).
    state = seed or 1
    for i in range(len(items) - 1, 0, -1):
        state = (state * 1103515245 + 12345) % (2**31)
        j = state % (i + 1)
        items[i], items[j] = items[j], items[i]
    return items


@given(traffic_schedules())
@settings(max_examples=25, deadline=None)
def test_random_schedules_respect_mpi_ordering(schedule):
    nranks, messages, post_seed, delays = schedule
    world = MPIWorld(linear_cluster(nranks, networks=("sisci",)))

    # Oracle: per (src, dst, tag), the sent sequence of message ids.
    expected = defaultdict(list)
    for src, dst, tag, size, mode, mid in messages:
        expected[(src, dst, tag)].append((mid, size))

    received = defaultdict(list)

    def program(mpi):
        from repro.sim.coroutines import sleep
        from repro.units import us
        comm = mpi.comm_world
        me = comm.rank
        yield sleep(us(delays[me]))

        # Post every incoming receive up front, pattern order shuffled.
        # For one pattern, MPI matches messages to receives in *posting*
        # order — record each request's slot within its pattern so the
        # oracle can compare positionally.
        incoming = [(src, tag) for (src, dst, tag) in expected
                    for _ in expected[(src, dst, tag)] if dst == me]
        slot_counter = defaultdict(int)
        requests = []
        for src, tag in shuffled(incoming, post_seed + me):
            slot = slot_counter[(src, tag)]
            slot_counter[(src, tag)] += 1
            requests.append(((src, tag, slot),
                             comm.irecv(source=src, tag=tag)))

        # Issue this rank's sends in schedule order.
        pending = []
        for src, dst, tag, size, mode, mid in messages:
            if src != me:
                continue
            payload = (mid, size)
            if mode == "send":
                yield from comm.send(payload, dest=dst, tag=tag, size=size)
            elif mode == "ssend":
                yield from comm.ssend(payload, dest=dst, tag=tag, size=size)
            else:
                pending.append(comm.isend(payload, dest=dst, tag=tag,
                                          size=size))

        # Drain: wait receives (shuffled again) and the isends.
        for (src, tag, slot), request in shuffled(requests,
                                                  post_seed * 7 + me):
            from repro.mpi import point2point as _p2p
            data, status = yield from _p2p.recv_wait(comm, request)
            received[(src, me, tag)].append((slot, data, status.count))
        for request in pending:
            yield from request.wait()
        return None

    world.run(program)

    for key, sent in expected.items():
        got = sorted(received[key])  # by posting slot
        assert len(got) == len(sent), f"lost messages on {key}"
        for (mid, size), (slot, data, count) in zip(sent, got):
            # FIFO per (src, dst, tag): the i-th *posted* receive for a
            # pattern gets the i-th *sent* message.  A declared 0-byte
            # message carries no payload (the ch_mad body block is
            # skipped), so it delivers None.
            expected_data = (mid, size) if size > 0 else None
            assert data == expected_data, f"reordering on {key}"
            assert count == size


@st.composite
def wildcard_schedules(draw):
    """Random traffic plus collectives, wildcards and optional loss."""
    nranks = draw(st.integers(2, 4))
    nmessages = draw(st.integers(1, 10))
    messages = []
    for i in range(nmessages):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 1).filter(lambda d: d != src))
        tag = draw(st.integers(0, 2))
        size = draw(st.sampled_from(SIZES))
        mode = draw(st.sampled_from(["send", "isend", "ssend"]))
        messages.append((src, dst, tag, size, mode, i))
    wildcard_ranks = frozenset(draw(st.sets(st.integers(0, nranks - 1))))
    lossy = draw(st.booleans())
    fault_seed = draw(st.integers(0, 10**6))
    return nranks, messages, wildcard_ranks, lossy, fault_seed


@given(wildcard_schedules())
@settings(max_examples=15, deadline=None)
def test_wildcards_and_collectives_run_checker_clean(schedule):
    """ANY_SOURCE/ANY_TAG + collectives + (sometimes) lossy fabrics.

    The oracle is weaker than the FIFO test above — with wildcards,
    which receive catches which message is schedule-dependent — so each
    rank returns the *multiset* of deliveries, which must match the
    schedule exactly.  The online checker runs throughout: overtaking,
    handshake misordering, duplicate deliveries past the transport
    dedup, or anything leaked at finalize fails the test even though
    the multiset oracle cannot see it.
    """
    nranks, messages, wildcard_ranks, lossy, fault_seed = schedule
    config = linear_cluster(nranks, networks=("sisci",))
    if lossy:
        config = ClusterConfig(nodes=config.nodes,
                               fault_plan=lossy_plan(0.03, seed=fault_seed))
    world = MPIWorld(config)
    checker = install_checker(world.engine)

    def program(mpi):
        from repro.mpi import point2point as _p2p
        comm = mpi.comm_world
        me = comm.rank

        # Collectives share the wire with the p2p storm (their hidden
        # context keeps wildcards from stealing their traffic).
        total = yield from comm.allreduce(me + 1)
        everyone = yield from comm.allgather(me)

        requests = []
        for src, dst, tag, size, mode, mid in messages:
            if dst != me:
                continue
            if me in wildcard_ranks:
                requests.append(comm.irecv(source=ANY_SOURCE, tag=ANY_TAG))
            else:
                requests.append(comm.irecv(source=src, tag=tag))

        pending = []
        for src, dst, tag, size, mode, mid in messages:
            if src != me:
                continue
            payload = (mid, size)
            if mode == "send":
                yield from comm.send(payload, dest=dst, tag=tag, size=size)
            elif mode == "ssend":
                yield from comm.ssend(payload, dest=dst, tag=tag, size=size)
            else:
                pending.append(comm.isend(payload, dest=dst, tag=tag,
                                          size=size))

        got = []
        for request in requests:
            data, status = yield from _p2p.recv_wait(comm, request)
            got.append((status.source, status.tag, data))
        for request in pending:
            yield from request.wait()
        yield from comm.barrier()
        return (total, tuple(everyone), sorted(got, key=repr))

    results = world.run(program)
    assert checker.violations == []
    for me, (total, everyone, got) in enumerate(results):
        assert total == sum(range(1, nranks + 1))
        assert everyone == tuple(range(nranks))
        want = sorted(((src, tag, (mid, size) if size > 0 else None)
                       for src, dst, tag, size, mode, mid in messages
                       if dst == me), key=repr)
        assert got == want, f"delivery multiset mismatch on rank {me}"


@st.composite
def rma_programs(draw):
    """Random fenced Put/Get/Accumulate programs with a sequential oracle.

    The window is 8 slots of 8 bytes.  Conflict discipline keeps every
    schedule deterministic: origin ``o`` only ever puts into slot ``o``
    (disjoint writers), slots 4-5 are SUM-accumulate counters
    (commutative), slots 6-7 are static; gets that would read a slot
    written in the same epoch are filtered out at generation time (such
    conflicting accesses are undefined in MPI).
    """
    nranks = draw(st.integers(2, 3))
    nepochs = draw(st.integers(1, 3))
    epochs = []
    for _ in range(nepochs):
        nops = draw(st.integers(0, 8))
        ops = []
        for _ in range(nops):
            origin = draw(st.integers(0, nranks - 1))
            target = draw(st.integers(0, nranks - 1))
            kind = draw(st.sampled_from(["put", "acc", "get"]))
            if kind == "put":
                ops.append((origin, "put", target, origin,
                            draw(st.integers(0, 255))))
            elif kind == "acc":
                ops.append((origin, "acc", target,
                            draw(st.integers(4, 5)),
                            draw(st.integers(1, 500))))
            else:
                ops.append((origin, "get", target,
                            draw(st.integers(0, 7)), 0))
        written = {(t, s) for (_o, k, t, s, _v) in ops if k != "get"}
        epochs.append(tuple(op for op in ops
                            if op[1] != "get" or (op[2], op[3]) not in written))
    return nranks, tuple(epochs)


@given(rma_programs())
@settings(max_examples=10, deadline=None)
def test_random_rma_matches_sequential_model(program_spec):
    """Random fenced RMA traffic vs a sequential reference model.

    The model applies epochs strictly in order — puts overwrite (last
    same-origin write wins, and origins write disjoint slots), accs sum,
    gets read the pre-epoch value of unwritten slots.  Whatever the
    schedule (and whichever path a get takes — agent reply or true
    rdma_read), every rank's final window and get results must match.
    """
    import numpy as np
    from repro.sim.engine import EngineConfig

    nranks, epochs = program_spec

    # Sequential reference: state[rank] = 64-byte window.
    state = [bytearray(64) for _ in range(nranks)]
    for rank in range(nranks):
        state[rank][48:64] = bytes((i + rank) % 256 for i in range(16))
    expected_gets = [[] for _ in range(nranks)]
    for step, ops in enumerate(epochs):
        snapshot = [bytes(s) for s in state]
        for origin, kind, target, slot, value in ops:
            if kind == "get":
                expected_gets[origin].append(
                    (step, target, slot, snapshot[target][slot * 8:
                                                          slot * 8 + 8]))
        for origin, kind, target, slot, value in ops:
            if kind == "put":
                state[target][slot * 8:slot * 8 + 8] = bytes([value]) * 8
            elif kind == "acc":
                arr = np.frombuffer(state[target], dtype="<i8").copy()
                arr[slot] += value
                state[target] = bytearray(arr.tobytes())

    config = linear_cluster(nranks, networks=("ib", "tcp"))
    world = MPIWorld(config, engine_config=EngineConfig(checker=True))

    def program(mpi):
        comm = mpi.comm_world
        me = comm.rank
        win = yield from comm.win_create(64)
        win.buffer[48:64] = (np.arange(16, dtype=np.uint16) + me) % 256
        yield from win.fence()
        gets = []
        for step, ops in enumerate(epochs):
            pending = []
            for origin, kind, target, slot, value in ops:
                if origin != me:
                    continue
                if kind == "put":
                    yield from win.put(target, slot * 8, bytes([value]) * 8)
                elif kind == "acc":
                    yield from win.accumulate(target, slot * 8, [value])
                else:
                    result = yield from win.get(target, slot * 8, 8)
                    pending.append((step, target, slot, result))
            yield from win.fence()
            gets.extend((step, target, slot, result.data)
                        for step, target, slot, result in pending)
        final = bytes(win.buffer)
        yield from win.free()
        return (final, gets)

    results = world.run(program)
    assert world.engine.checker.violations == []
    for rank, (final, gets) in enumerate(results):
        assert final == bytes(state[rank]), f"window mismatch on rank {rank}"
        assert gets == expected_gets[rank], f"get mismatch on rank {rank}"
