"""Property-based integration test: random traffic schedules.

Hypothesis generates arbitrary message schedules (sources, destinations,
tags, sizes spanning eager and rendezvous, send modes, posting orders,
timing jitter) and the test checks the MPI ordering contract on the full
simulated stack: for every (source, destination, tag) triple, values
arrive in the order they were sent, regardless of how receives were
posted relative to arrivals.
"""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterConfig, MPIWorld
from repro.faults import lossy_plan
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from tests.helpers import linear_cluster

#: Sizes straddling the SCI switch point (8 KB): eager and rendezvous mix.
SIZES = (0, 4, 512, 8192, 9000, 60_000)


@st.composite
def traffic_schedules(draw):
    nranks = draw(st.integers(2, 4))
    nmessages = draw(st.integers(1, 14))
    messages = []
    for i in range(nmessages):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 1).filter(lambda d: d != src))
        tag = draw(st.integers(0, 2))
        size = draw(st.sampled_from(SIZES))
        mode = draw(st.sampled_from(["send", "isend", "ssend"]))
        messages.append((src, dst, tag, size, mode, i))
    # Per-receiver pattern posting order: a permutation seed.
    post_seed = draw(st.integers(0, 10**6))
    delays = draw(st.lists(st.integers(0, 200), min_size=nranks,
                           max_size=nranks))
    return nranks, messages, post_seed, delays


def shuffled(items, seed):
    items = list(items)
    # Deterministic Fisher-Yates from the seed (no global RNG state).
    state = seed or 1
    for i in range(len(items) - 1, 0, -1):
        state = (state * 1103515245 + 12345) % (2**31)
        j = state % (i + 1)
        items[i], items[j] = items[j], items[i]
    return items


@given(traffic_schedules())
@settings(max_examples=25, deadline=None)
def test_random_schedules_respect_mpi_ordering(schedule):
    nranks, messages, post_seed, delays = schedule
    world = MPIWorld(linear_cluster(nranks, networks=("sisci",)))

    # Oracle: per (src, dst, tag), the sent sequence of message ids.
    expected = defaultdict(list)
    for src, dst, tag, size, mode, mid in messages:
        expected[(src, dst, tag)].append((mid, size))

    received = defaultdict(list)

    def program(mpi):
        from repro.sim.coroutines import sleep
        from repro.units import us
        comm = mpi.comm_world
        me = comm.rank
        yield sleep(us(delays[me]))

        # Post every incoming receive up front, pattern order shuffled.
        # For one pattern, MPI matches messages to receives in *posting*
        # order — record each request's slot within its pattern so the
        # oracle can compare positionally.
        incoming = [(src, tag) for (src, dst, tag) in expected
                    for _ in expected[(src, dst, tag)] if dst == me]
        slot_counter = defaultdict(int)
        requests = []
        for src, tag in shuffled(incoming, post_seed + me):
            slot = slot_counter[(src, tag)]
            slot_counter[(src, tag)] += 1
            requests.append(((src, tag, slot),
                             comm.irecv(source=src, tag=tag)))

        # Issue this rank's sends in schedule order.
        pending = []
        for src, dst, tag, size, mode, mid in messages:
            if src != me:
                continue
            payload = (mid, size)
            if mode == "send":
                yield from comm.send(payload, dest=dst, tag=tag, size=size)
            elif mode == "ssend":
                yield from comm.ssend(payload, dest=dst, tag=tag, size=size)
            else:
                pending.append(comm.isend(payload, dest=dst, tag=tag,
                                          size=size))

        # Drain: wait receives (shuffled again) and the isends.
        for (src, tag, slot), request in shuffled(requests,
                                                  post_seed * 7 + me):
            from repro.mpi import point2point as _p2p
            data, status = yield from _p2p.recv_wait(comm, request)
            received[(src, me, tag)].append((slot, data, status.count))
        for request in pending:
            yield from request.wait()
        return None

    world.run(program)

    for key, sent in expected.items():
        got = sorted(received[key])  # by posting slot
        assert len(got) == len(sent), f"lost messages on {key}"
        for (mid, size), (slot, data, count) in zip(sent, got):
            # FIFO per (src, dst, tag): the i-th *posted* receive for a
            # pattern gets the i-th *sent* message.  A declared 0-byte
            # message carries no payload (the ch_mad body block is
            # skipped), so it delivers None.
            expected_data = (mid, size) if size > 0 else None
            assert data == expected_data, f"reordering on {key}"
            assert count == size


@st.composite
def wildcard_schedules(draw):
    """Random traffic plus collectives, wildcards and optional loss."""
    nranks = draw(st.integers(2, 4))
    nmessages = draw(st.integers(1, 10))
    messages = []
    for i in range(nmessages):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 1).filter(lambda d: d != src))
        tag = draw(st.integers(0, 2))
        size = draw(st.sampled_from(SIZES))
        mode = draw(st.sampled_from(["send", "isend", "ssend"]))
        messages.append((src, dst, tag, size, mode, i))
    wildcard_ranks = frozenset(draw(st.sets(st.integers(0, nranks - 1))))
    lossy = draw(st.booleans())
    fault_seed = draw(st.integers(0, 10**6))
    return nranks, messages, wildcard_ranks, lossy, fault_seed


@given(wildcard_schedules())
@settings(max_examples=15, deadline=None)
def test_wildcards_and_collectives_run_checker_clean(schedule):
    """ANY_SOURCE/ANY_TAG + collectives + (sometimes) lossy fabrics.

    The oracle is weaker than the FIFO test above — with wildcards,
    which receive catches which message is schedule-dependent — so each
    rank returns the *multiset* of deliveries, which must match the
    schedule exactly.  The online checker runs throughout: overtaking,
    handshake misordering, duplicate deliveries past the transport
    dedup, or anything leaked at finalize fails the test even though
    the multiset oracle cannot see it.
    """
    nranks, messages, wildcard_ranks, lossy, fault_seed = schedule
    config = linear_cluster(nranks, networks=("sisci",))
    if lossy:
        config = ClusterConfig(nodes=config.nodes,
                               fault_plan=lossy_plan(0.03, seed=fault_seed))
    world = MPIWorld(config)
    checker = world.engine.enable_checker()

    def program(mpi):
        from repro.mpi import point2point as _p2p
        comm = mpi.comm_world
        me = comm.rank

        # Collectives share the wire with the p2p storm (their hidden
        # context keeps wildcards from stealing their traffic).
        total = yield from comm.allreduce(me + 1)
        everyone = yield from comm.allgather(me)

        requests = []
        for src, dst, tag, size, mode, mid in messages:
            if dst != me:
                continue
            if me in wildcard_ranks:
                requests.append(comm.irecv(source=ANY_SOURCE, tag=ANY_TAG))
            else:
                requests.append(comm.irecv(source=src, tag=tag))

        pending = []
        for src, dst, tag, size, mode, mid in messages:
            if src != me:
                continue
            payload = (mid, size)
            if mode == "send":
                yield from comm.send(payload, dest=dst, tag=tag, size=size)
            elif mode == "ssend":
                yield from comm.ssend(payload, dest=dst, tag=tag, size=size)
            else:
                pending.append(comm.isend(payload, dest=dst, tag=tag,
                                          size=size))

        got = []
        for request in requests:
            data, status = yield from _p2p.recv_wait(comm, request)
            got.append((status.source, status.tag, data))
        for request in pending:
            yield from request.wait()
        yield from comm.barrier()
        return (total, tuple(everyone), sorted(got, key=repr))

    results = world.run(program)
    assert checker.violations == []
    for me, (total, everyone, got) in enumerate(results):
        assert total == sum(range(1, nranks + 1))
        assert everyone == tuple(range(nranks))
        want = sorted(((src, tag, (mid, size) if size > 0 else None)
                       for src, dst, tag, size, mode, mid in messages
                       if dst == me), key=repr)
        assert got == want, f"delivery multiset mismatch on rank {me}"
