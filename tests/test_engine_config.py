"""EngineConfig wiring plus the legacy enable_* deprecation shims."""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterConfig, EngineConfig, MPIWorld, NodeSpec
from repro.errors import ConfigurationError
from repro.sim import Engine, NULL_INSTRUMENTS
from repro.sim.engine import (
    install_checker,
    install_instrumentation,
    seed_namespace,
)


def _two_nodes() -> ClusterConfig:
    return ClusterConfig(
        nodes=[NodeSpec(f"n{i}", networks=("sisci",)) for i in range(2)])


def _pingpong(mpi):
    comm = mpi.comm_world
    if comm.rank == 0:
        yield from comm.send(b"", dest=1, tag=1, size=64)
        yield from comm.recv(source=1, tag=2, size=64)
    else:
        yield from comm.recv(source=0, tag=1, size=64)
        yield from comm.send(b"", dest=0, tag=2, size=64)
    return comm.rank


# ---------------------------------------------------------------------------
# the config object
# ---------------------------------------------------------------------------

def test_default_engine_has_everything_off():
    engine = Engine()
    assert engine.instruments is NULL_INSTRUMENTS
    assert not engine.checker.enabled
    assert engine.fuzz is None
    assert engine.config is None


def test_config_installs_requested_features():
    engine = Engine(config=EngineConfig(
        seed=5, instrumentation=True, checker=True, fuzz_seed=3))
    assert engine.seed == 5
    assert engine.instruments.enabled
    assert engine.checker.enabled
    assert engine.fuzz is not None and engine.fuzz.seed == 3
    assert engine.tracer is engine.instruments.tracer


def test_trace_sink_implies_instrumentation():
    config = EngineConfig(trace_sink="/tmp/unused.json")
    assert config.wants_instrumentation
    assert Engine(config=config).instruments.enabled


def test_world_accepts_engine_config_and_exports_trace(tmp_path):
    sink = tmp_path / "trace.json"
    world = MPIWorld(_two_nodes(),
                     engine_config=EngineConfig(checker=True,
                                                trace_sink=str(sink)))
    assert world.engine.checker.enabled
    results = world.run(_pingpong)
    assert results == [0, 1]
    exported = json.loads(sink.read_text())
    assert exported["traceEvents"]


def test_world_without_config_matches_configured_world():
    # EngineConfig() must be behaviorally inert: same program, same
    # virtual-time outcome with and without it.
    plain = MPIWorld(_two_nodes())
    plain.run(_pingpong)
    configured = MPIWorld(_two_nodes(), engine_config=EngineConfig())
    configured.run(_pingpong)
    assert plain.engine.now == configured.engine.now


def test_seed_namespace_derivation():
    assert seed_namespace("fuzz", 7, "phase", "p0") == "fuzz/7/phase/p0"
    # Engine.rng streams are keyed by the same derivation, so equal
    # namespaces mean equal streams and distinct namespaces diverge.
    a, b = Engine(seed=1), Engine(seed=1)
    assert a.rng("x").random() == b.rng("x").random()
    assert a.rng("x/1").random() != b.rng("x/2").random()


# ---------------------------------------------------------------------------
# removed enablement shims
# ---------------------------------------------------------------------------

def test_enable_methods_are_errors_naming_the_replacement():
    engine = Engine()
    with pytest.raises(ConfigurationError,
                       match="EngineConfig\\(instrumentation=True\\)"):
        engine.enable_instrumentation()
    with pytest.raises(ConfigurationError,
                       match="EngineConfig\\(checker=True"):
        engine.enable_checker(raise_on_violation=False)
    with pytest.raises(ConfigurationError, match="engine.tracer"):
        engine.enable_tracing()
    # A failed enable_* call must not have half-installed anything.
    assert not engine.instruments.enabled
    assert not engine.checker.enabled


def test_install_helpers_do_not_warn(recwarn):
    engine = Engine()
    install_instrumentation(engine)
    install_checker(engine, raise_on_violation=False)
    deprecations = [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
    assert not deprecations


def test_install_helper_equivalent_to_config():
    # The imperative and declarative spellings must drive identical
    # simulations.
    via_install = MPIWorld(_two_nodes())
    install_instrumentation(via_install.engine)
    via_install.run(_pingpong)

    via_config = MPIWorld(_two_nodes(),
                          engine_config=EngineConfig(instrumentation=True))
    via_config.run(_pingpong)

    assert via_install.engine.now == via_config.engine.now
    assert len(via_install.engine.tracer.records) == \
        len(via_config.engine.tracer.records)
