"""Shared test utilities."""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster import ClusterConfig, MPIWorld, NodeSpec, two_node_cluster


def run_world(program: Callable, config: ClusterConfig | None = None,
              **config_kwargs) -> list[Any]:
    """Run ``program(env)`` on a world; returns per-rank results."""
    if config is None:
        config = two_node_cluster(**config_kwargs)
    world = MPIWorld(config)
    return world.run(program)


def linear_cluster(nranks: int, networks=("sisci",), device="ch_mad") -> ClusterConfig:
    """``nranks`` single-process nodes."""
    nodes = [NodeSpec(f"n{i}", networks=tuple(networks)) for i in range(nranks)]
    return ClusterConfig(nodes=nodes, device=device)


def run_ranks(program: Callable, nranks: int = 2, networks=("sisci",),
              device: str = "ch_mad") -> list[Any]:
    """Run ``program(env)`` across ``nranks`` single-process nodes."""
    return run_world(program, linear_cluster(nranks, networks, device))
