"""Unit and property tests for the MPI datatype engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPIDatatypeError
from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    contiguous,
    hvector,
    indexed,
    struct,
    vector,
)


class TestBasicTypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert LONG.size == 8
        assert FLOAT.size == 4
        assert DOUBLE.size == 8

    def test_basic_types_are_committed(self):
        assert INT.committed

    def test_basic_is_contiguous(self):
        assert DOUBLE.is_contiguous

    def test_pack_identity(self):
        buf = np.arange(10, dtype=np.int32)
        assert np.array_equal(INT.pack(buf, count=10), buf)

    def test_unpack_identity(self):
        out = np.zeros(5, dtype=np.float64)
        DOUBLE.unpack(np.array([1.0, 2, 3, 4, 5]), out, count=5)
        assert np.array_equal(out, [1, 2, 3, 4, 5])

    def test_wrong_dtype_rejected(self):
        with pytest.raises(MPIDatatypeError, match="dtype"):
            INT.pack(np.zeros(4, dtype=np.float64))


class TestContiguous:
    def test_size_and_extent(self):
        t = contiguous(5, INT).commit()
        assert t.size == 20
        assert t.extent == 20
        assert t.is_contiguous

    def test_pack_roundtrip(self):
        t = contiguous(3, DOUBLE).commit()
        buf = np.arange(9, dtype=np.float64)
        packed = t.pack(buf, count=3)
        out = np.zeros(9, dtype=np.float64)
        t.unpack(packed, out, count=3)
        assert np.array_equal(out, buf)

    def test_uncommitted_rejected(self):
        t = contiguous(2, INT)
        with pytest.raises(MPIDatatypeError, match="not committed"):
            t.pack(np.zeros(4, dtype=np.int32))

    def test_negative_count_rejected(self):
        with pytest.raises(MPIDatatypeError):
            contiguous(-1, INT)


class TestVector:
    def test_column_of_matrix(self):
        """The mpi4py-guide idiom: a strided column."""
        rows, cols = 4, 6
        t = vector(count=rows, blocklength=1, stride=cols, base=DOUBLE).commit()
        matrix = np.arange(rows * cols, dtype=np.float64)
        packed = t.pack(matrix)
        assert np.array_equal(packed, matrix.reshape(rows, cols)[:, 0])

    def test_not_contiguous(self):
        assert not vector(3, 1, 2, INT).commit().is_contiguous

    def test_vector_with_blocklength(self):
        t = vector(count=2, blocklength=2, stride=4, base=INT).commit()
        buf = np.arange(8, dtype=np.int32)
        assert np.array_equal(t.pack(buf), [0, 1, 4, 5])

    def test_unpack_scatters_back(self):
        t = vector(count=3, blocklength=1, stride=2, base=INT).commit()
        out = np.zeros(6, dtype=np.int32)
        t.unpack(np.array([7, 8, 9], dtype=np.int32), out)
        assert np.array_equal(out, [7, 0, 8, 0, 9, 0])

    def test_size_vs_extent(self):
        t = vector(3, 1, 4, INT).commit()
        assert t.size == 12          # 3 ints of data
        assert t.extent == 36        # spans (3-1)*4+1 = 9 ints

    def test_hvector_byte_stride(self):
        t = hvector(count=2, blocklength=1, stride_bytes=12, base=INT).commit()
        buf = np.arange(6, dtype=np.int32)
        assert np.array_equal(t.pack(buf), [0, 3])

    def test_misaligned_hvector_rejected(self):
        t = hvector(count=2, blocklength=1, stride_bytes=5, base=INT).commit()
        with pytest.raises(MPIDatatypeError, match="aligned"):
            t.pack(np.zeros(8, dtype=np.int32))


class TestIndexed:
    def test_basic_layout(self):
        t = indexed([2, 1], [0, 4], INT).commit()
        buf = np.arange(8, dtype=np.int32)
        assert np.array_equal(t.pack(buf), [0, 1, 4])

    def test_roundtrip(self):
        t = indexed([1, 3], [5, 0], DOUBLE).commit()
        buf = np.arange(8, dtype=np.float64)
        packed = t.pack(buf)
        out = np.zeros(8, dtype=np.float64)
        t.unpack(packed, out)
        assert out[5] == 5 and np.array_equal(out[0:3], [0, 1, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(MPIDatatypeError):
            indexed([1, 2], [0], INT)

    def test_buffer_too_small(self):
        t = indexed([1], [10], INT).commit()
        with pytest.raises(MPIDatatypeError, match="too small"):
            t.pack(np.zeros(4, dtype=np.int32))


class TestStruct:
    def test_pack_heterogeneous_fields(self):
        # struct { int32 a; float64 b; } with a hole for alignment.
        t = struct([(0, 1, INT), (8, 1, DOUBLE)], extent=16).commit()
        raw = np.zeros(16, dtype=np.uint8)
        raw[0:4] = np.array([42, 0, 0, 0], dtype=np.uint8)
        raw[8:16] = np.frombuffer(np.float64(3.5).tobytes(), dtype=np.uint8)
        packed = t.pack(raw)
        assert packed.size == t.size == 12
        out = np.zeros(16, dtype=np.uint8)
        t.unpack(packed, out)
        assert np.array_equal(out[0:4], raw[0:4])
        assert np.array_equal(out[8:16], raw[8:16])

    def test_multiple_instances(self):
        t = struct([(0, 2, INT)], extent=12).commit()
        raw = np.zeros(24, dtype=np.uint8)
        raw[:] = np.arange(24)
        packed = t.pack(raw, count=2)
        assert packed.size == 16

    def test_signature(self):
        t = struct([(0, 1, INT), (8, 2, DOUBLE)])
        assert t.signature() == (("MPI_INT", 1), ("MPI_DOUBLE", 2))

    def test_requires_uint8_buffer(self):
        t = struct([(0, 1, INT)]).commit()
        with pytest.raises(MPIDatatypeError, match="uint8"):
            t.pack(np.zeros(4, dtype=np.int32))

    def test_struct_not_nestable(self):
        t = struct([(0, 1, INT)])
        with pytest.raises(MPIDatatypeError, match="nested"):
            contiguous(2, t)


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

@st.composite
def vector_specs(draw):
    count = draw(st.integers(1, 8))
    blocklength = draw(st.integers(1, 5))
    stride = draw(st.integers(blocklength, 10))
    return count, blocklength, stride


class TestProperties:
    @given(vector_specs(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_vector_pack_unpack_roundtrip(self, spec, count):
        vcount, blocklength, stride = spec
        t = vector(vcount, blocklength, stride, DOUBLE).commit()
        elems = (t.extent // DOUBLE.extent) * count + 4
        buf = np.random.default_rng(0).random(elems)
        packed = t.pack(buf, count=count)
        out = np.full(elems, -1.0)
        t.unpack(packed, out, count=count)
        repacked = t.pack(out, count=count)
        assert np.array_equal(packed, repacked)

    @given(vector_specs())
    @settings(max_examples=60, deadline=None)
    def test_vector_size_is_data_bytes(self, spec):
        count, blocklength, stride = spec
        t = vector(count, blocklength, stride, INT).commit()
        assert t.size == count * blocklength * 4

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 12)),
                    min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_indexed_packs_exactly_declared_elements(self, blocks):
        lengths = [b[0] for b in blocks]
        disps = []
        cursor = 0
        for length, gap in blocks:
            disps.append(cursor + gap)
            cursor += gap + length
        t = indexed(lengths, disps, INT).commit()
        buf = np.arange(cursor + 8, dtype=np.int32)
        assert t.pack(buf).size == sum(lengths)

    @given(st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_contiguous_roundtrip_any_count(self, n):
        t = contiguous(n, INT).commit()
        buf = np.arange(max(n, 1), dtype=np.int32)
        packed = t.pack(buf)
        out = np.zeros_like(buf)
        t.unpack(packed, out)
        assert np.array_equal(out[:n], buf[:n])
