"""Rank-failure model and the ULFM-style fault-tolerance API.

End-to-end coverage of :mod:`repro.mpi.ft` and the rank-death machinery
in :mod:`repro.faults.death`: a dead rank is *detected* (heartbeats,
piggybacked liveness, transport timeouts, or the node-mate OS reap),
pending operations fail with ``ERR_PROC_FAILED``/``ERR_REVOKED`` instead
of hanging, and the ULFM recovery verbs — ``revoke``, ``shrink``,
``agree`` — rebuild a working communicator for the survivors.

Also here: the *negative plants* for the two FT checker invariants
(``revoked-delivery`` and ``dead-rank-leak``), which force the
conditions the production code is designed to prevent and assert the
online checker names them.
"""

import pytest

from repro.cluster import ClusterConfig, EngineConfig, MPIWorld, NodeSpec
from repro.errors import (
    CheckViolation,
    MPICommError,
    MPIProcFailedError,
    MPIRevokedError,
)
from repro.faults import FaultPlan
from repro.mpi.constants import ERR_PROC_FAILED, WORLD_CONTEXT
from repro.units import us


def _nodes(count, networks=("tcp", "sisci"), processes=1):
    return [NodeSpec(f"n{i}", networks=networks, processes=processes)
            for i in range(count)]


def _recovery_program(mpi, iterations=200):
    """Allreduce until the failure bites, then revoke/shrink/continue."""
    comm = mpi.comm_world
    failure = None
    for step in range(iterations):
        try:
            yield from comm.allreduce(comm.rank + 1)
        except MPIProcFailedError as exc:
            failure = ("proc-failed", exc.failed_rank)
            break
        except MPIRevokedError:
            failure = ("revoked", None)
            break
    if failure is None:
        return None
    comm.revoke()
    shrunk = yield from comm.shrink()
    total = yield from shrunk.allreduce(shrunk.rank + 1)
    agreed = yield from shrunk.agree(1)
    return (failure, shrunk.rank, shrunk.size, total, agreed)


# -- detection + recovery end to end -------------------------------------


class TestRankDeathRecovery:
    def _run(self, victim=2, size=4, **engine_kw):
        config = ClusterConfig(
            nodes=_nodes(size),
            fault_plan=FaultPlan.node_death(rank=victim, at=us(300)),
        )
        world = MPIWorld(config, engine_config=EngineConfig(
            seed=3, instrumentation=True, checker=True, **engine_kw))
        return world, world.run(_recovery_program)

    def test_every_survivor_fails_over_and_recovers(self):
        world, results = self._run()
        assert results[2] is None          # the victim never returns
        survivors = [r for r in results if r is not None]
        assert len(survivors) == 3
        for (kind, failed), new_rank, new_size, total, agreed in survivors:
            assert kind == "proc-failed"
            assert failed == 2             # the culprit is named
            assert new_size == 3           # dense shrunk communicator
            assert total == 6              # 1+2+3 on the survivors
            assert agreed == 1
        assert sorted(r[1] for r in survivors) == [0, 1, 2]

    def test_detection_metrics_emitted(self):
        world, _results = self._run()
        metrics = world.engine.instruments.metrics
        assert metrics.total("faults.node_deaths") == 1
        assert metrics.total("ft.peer_deaths") >= 1
        assert metrics.total("ft.ops_failed") >= 3
        assert metrics.total("ft.shrinks") == 3
        assert metrics.total("ft.agreements") == 3
        latencies = [m for m in metrics.collect()
                     if m.name == "ft.detection_latency_ns"]
        assert latencies and latencies[0].count >= 1

    def test_recovery_is_deterministic(self):
        _w1, first = self._run()
        _w2, second = self._run()
        assert first == second

    def test_smp_node_mate_death_via_local_reap(self):
        # The victim shares a node with rank 0: smp_plug produces no
        # timeouts, so the survivor learns from the simulated OS reap.
        config = ClusterConfig(
            nodes=_nodes(2, processes=2),
            fault_plan=FaultPlan.node_death(rank=1, at=us(300)),
        )
        world = MPIWorld(config, engine_config=EngineConfig(
            seed=5, checker=True))
        results = world.run(_recovery_program)
        assert results[1] is None
        survivors = [r for r in results if r is not None]
        assert len(survivors) == 3
        assert all(r[2] == 3 and r[3] == 6 for r in survivors)


# -- revoke semantics ----------------------------------------------------


class TestRevoke:
    def test_revocation_poisons_every_rank(self):
        # No deaths: rank 0 revokes by fiat; the flood must abort the
        # other ranks' pending collectives with ERR_REVOKED.
        config = ClusterConfig(nodes=_nodes(3), ft=True)
        world = MPIWorld(config, engine_config=EngineConfig(checker=True))

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.revoke()
                with pytest.raises(MPIRevokedError):
                    yield from comm.allreduce(1)
                return "revoker"
            try:
                for _ in range(100):
                    yield from comm.allreduce(comm.rank)
            except MPIRevokedError:
                return "poisoned"
            return "never-saw-it"

        assert world.run(program) == ["revoker", "poisoned", "poisoned"]

    def test_shrink_of_intact_comm_and_agree_is_an_and(self):
        config = ClusterConfig(nodes=_nodes(3), ft=True)
        world = MPIWorld(config, engine_config=EngineConfig(checker=True))

        def program(mpi):
            comm = mpi.comm_world
            shrunk = yield from comm.shrink()   # nobody died: same shape
            flag = 0 if comm.rank == 1 else 1
            agreed = yield from shrunk.agree(flag)
            return (shrunk.rank, shrunk.size, agreed)

        results = world.run(program)
        # One dissenter makes the bitwise-AND agreement 0 everywhere.
        assert results == [(0, 3, 0), (1, 3, 0), (2, 3, 0)]

    def test_ft_api_requires_ft_session(self):
        world = MPIWorld(ClusterConfig(nodes=_nodes(2)))

        def program(mpi):
            comm = mpi.comm_world
            with pytest.raises(MPICommError):
                comm.revoke()
            with pytest.raises(MPICommError):
                yield from comm.shrink()
            return "ok"

        assert world.run(program) == ["ok", "ok"]


# -- nonblocking error paths ---------------------------------------------


class TestNonblockingErrors:
    def test_isend_and_irecv_to_dead_rank_fail(self):
        config = ClusterConfig(
            nodes=_nodes(3),
            fault_plan=FaultPlan.node_death(rank=2, at=us(200)),
        )
        world = MPIWorld(config, engine_config=EngineConfig(checker=True))

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 2:
                while True:            # dies mid-loop
                    yield from comm.send(1, dest=0, tag=1, size=64)
            if comm.rank == 1:
                return "idle"
            # rank 0: a posted receive and a send loop, both of which
            # must fail once the peer is declared dead — never hang.
            posted = comm.irecv(source=2, tag=99)
            send_error = None
            for step in range(500):
                request = comm.isend(("probe", step), dest=2, tag=1,
                                     size=2048)
                try:
                    yield from request.wait()
                except MPIProcFailedError as exc:
                    send_error = exc
                    break
            assert send_error is not None
            assert send_error.failed_rank == 2
            with pytest.raises(MPIProcFailedError):
                yield from posted.wait()
            status = posted.handle.status
            assert status.error == ERR_PROC_FAILED
            assert status.failed_rank == 2
            return "failed-fast"

        results = world.run(program)
        assert results[0] == "failed-fast"
        assert results[2] is None


# -- negative plants: the FT invariants must actually fire ----------------


class TestInvariantPlants:
    def test_revoked_delivery_plant(self):
        # Bypass the FT layer: tell the checker rank 1 saw comm_world
        # revoked, then deliver a message to rank 1 anyway.  The
        # matching must trip `revoked-delivery`.
        world = MPIWorld(ClusterConfig(nodes=_nodes(2)),
                         engine_config=EngineConfig(checker=True))
        world.engine.checker.on_revoke(1, [WORLD_CONTEXT])

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send("late", dest=1, tag=0, size=64)
            else:
                yield from comm.recv(source=0, tag=0)

        with pytest.raises(CheckViolation) as excinfo:
            world.run(program)
        assert excinfo.value.invariant == "revoked-delivery"
        assert excinfo.value.rank == 1

    def test_dead_rank_leak_plant(self):
        # Bypass the FT layer: declare rank 1 dead to the checker only,
        # leave a receive from it posted at finalize.  The finalize
        # audit must trip `dead-rank-leak` (not the generic leak).
        world = MPIWorld(ClusterConfig(nodes=_nodes(2)),
                         engine_config=EngineConfig(checker=True))
        world.engine.checker.on_rank_dead(1)

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.irecv(source=1, tag=4)   # never completed
            return "done"
            yield  # pragma: no cover - makes this a generator

        with pytest.raises(CheckViolation) as excinfo:
            world.run(program)
        assert excinfo.value.invariant == "dead-rank-leak"
        assert excinfo.value.rank == 0

    def test_killed_rank_pools_retired_and_plants_purged(self):
        # PR-8 object pools x the rank-failure model: a killed rank's
        # pooled task/request shells must be *retired* (cleared, never
        # handed back out), not recycled into live traffic.
        from repro.sim.coroutines import sleep

        config = ClusterConfig(
            nodes=_nodes(2),
            fault_plan=FaultPlan.node_death(rank=1, at=us(250)),
        )
        world = MPIWorld(config)

        def _noop():
            return
            yield  # pragma: no cover - generator marker

        def program(mpi):
            comm = mpi.comm_world
            if comm.rank == 1:
                # Fill the victim's free-list with finished recyclable
                # shells before the death bites.
                for _ in range(4):
                    mpi.process.runtime.spawn_temporary(_noop(),
                                                        name="plant")
                yield sleep(us(1000))  # killed mid-sleep at 250us
            else:
                yield sleep(us(500))
            return "survived"

        results = world.run(program)
        assert results[0] == "survived"
        assert results[1] is None  # the victim never returns

        cpu = world.session.processes[1].runtime.cpu
        assert cpu.pools_retired
        assert len(cpu._task_pool) == 0, "planted task shells must be purged"
        progress = world.envs[1].progress
        assert progress._pools_retired

        # Negative plants: force shells at the retired pools and check
        # neither free-list ever hands one back out.
        fresh_task = cpu.spawn(_noop, name="post-death", recyclable=True)
        assert not fresh_task.recyclable, (
            "a retired CPU must not mint recyclable shells")
        planted = progress.acquire_recv(None, WORLD_CONTEXT, 0, 0, None)
        progress._recv_pool.push(planted)
        fresh = progress.acquire_recv(None, WORLD_CONTEXT, 0, 0, None)
        assert fresh is not planted, (
            "a retired recv pool must not recycle shells")

    def test_clean_ft_run_has_no_violations(self):
        config = ClusterConfig(
            nodes=_nodes(4),
            fault_plan=FaultPlan.node_death(rank=1, at=us(250)),
        )
        world = MPIWorld(config, engine_config=EngineConfig(
            checker=True, checker_raise=False))
        world.run(_recovery_program)
        assert list(world.engine.checker.violations) == []
